package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"
)

// SchemaVersion identifies the BENCH_*.json result format shared by
// reservoir-bench (virtual-time paper experiments) and reservoir-loadgen
// (wall-clock HTTP service benchmarks). docs/BENCHMARKS.md documents the
// schema and how to compare files across PRs.
const SchemaVersion = "reservoir-bench/v1"

// Report is the machine-readable envelope every benchmark tool emits: one
// file per invocation, one Result per measured configuration.
type Report struct {
	Schema string `json:"schema"`
	// Tool is the producing binary ("reservoir-bench" or
	// "reservoir-loadgen").
	Tool string `json:"tool"`
	// Name labels the run (e.g. "service_baseline"); BENCH_<name>.json is
	// the conventional file name.
	Name      string `json:"name"`
	CreatedAt string `json:"created_at,omitempty"`
	// Environment of the producing process.
	Go     string `json:"go"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPUs   int    `json:"cpus"`
	// Params are invocation-level parameters (scale, seeds, flags).
	Params map[string]any `json:"params,omitempty"`
	// Results hold one entry per measured configuration.
	Results []Result `json:"results"`
}

// Result is one measured configuration: free-form identifying params plus
// a flat metric map, so differently shaped experiments (virtual-time
// figures, HTTP latency sweeps) share one schema that diffing and plotting
// tools can consume uniformly.
type Result struct {
	// Name identifies the configuration within the report, e.g.
	// "fig3/ours/k=1000/n=4" or "clients=8,batch=10000".
	Name string `json:"name"`
	// Params are the configuration knobs that produced the metrics.
	Params map[string]any `json:"params,omitempty"`
	// Metrics maps metric name to value. Unit conventions: *_ns virtual
	// or wall nanoseconds, *_ms wall milliseconds, *_per_s rates, bare
	// names are counts or ratios.
	Metrics map[string]float64 `json:"metrics"`
}

// NewReport returns a Report stamped with the producing environment.
// CreatedAt is filled by the caller (tools stamp time.Now; tests leave it
// empty for reproducible output).
func NewReport(tool, name string) *Report {
	return &Report{
		Schema: SchemaVersion,
		Tool:   tool,
		Name:   name,
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
	}
}

// Add appends one result.
func (r *Report) Add(name string, params map[string]any, metrics map[string]float64) {
	r.Results = append(r.Results, Result{Name: name, Params: params, Metrics: metrics})
}

// WriteFile writes the report as indented JSON (the BENCH_*.json format).
func (r *Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadReportFile loads a BENCH_*.json file and checks its schema tag.
func ReadReportFile(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, SchemaVersion)
	}
	return &r, nil
}

// LatencySummary condenses a set of request durations into the quantiles
// the service benchmarks report.
type LatencySummary struct {
	Count  int
	MeanMS float64
	P50MS  float64
	P95MS  float64
	P99MS  float64
	MaxMS  float64
}

// Summarize computes nearest-rank quantiles over request durations.
func Summarize(durs []time.Duration) LatencySummary {
	var s LatencySummary
	s.Count = len(durs)
	if s.Count == 0 {
		return s
	}
	ms := make([]float64, len(durs))
	total := 0.0
	for i, d := range durs {
		ms[i] = float64(d) / float64(time.Millisecond)
		total += ms[i]
	}
	sort.Float64s(ms)
	q := func(p float64) float64 {
		rank := int(p*float64(len(ms))+0.9999999) - 1
		if rank < 0 {
			rank = 0
		}
		if rank >= len(ms) {
			rank = len(ms) - 1
		}
		return ms[rank]
	}
	s.MeanMS = total / float64(len(ms))
	s.P50MS = q(0.50)
	s.P95MS = q(0.95)
	s.P99MS = q(0.99)
	s.MaxMS = ms[len(ms)-1]
	return s
}

// Metrics merges the summary into m under prefix ("latency" gives
// latency_p50_ms etc.).
func (l LatencySummary) Metrics(prefix string, m map[string]float64) {
	m[prefix+"_mean_ms"] = l.MeanMS
	m[prefix+"_p50_ms"] = l.P50MS
	m[prefix+"_p95_ms"] = l.P95MS
	m[prefix+"_p99_ms"] = l.P99MS
	m[prefix+"_max_ms"] = l.MaxMS
}

// --- converters from the experiment row types --------------------------------

// AddFigRows appends weak/strong scaling rows (Figures 3-5).
func (r *Report) AddFigRows(rows []FigRow) {
	for _, row := range rows {
		res := row.Result
		r.Add(
			fmt.Sprintf("%s/%s/k=%d/b=%d/n=%d", row.Exp, row.Algo, row.K, row.BatchB, row.Nodes),
			map[string]any{
				"exp": row.Exp, "algo": row.Algo, "nodes": row.Nodes,
				"p": row.P, "k": row.K, "batch": row.BatchB,
			},
			map[string]float64{
				"speedup":             row.Speedup,
				"round_ns":            res.RoundNS,
				"throughput_per_pe_s": res.ThroughputPerPE,
				"msgs_per_round":      res.MsgsPerRound,
				"words_per_round":     res.WordsPerRound,
				"avg_selection_depth": res.AvgSelectionDepth,
			},
		)
	}
}

// AddCompositionRows appends Figure 6 phase-fraction rows.
func (r *Report) AddCompositionRows(rows []CompositionRow) {
	for _, row := range rows {
		r.Add(
			fmt.Sprintf("fig6/%s/n=%d", row.Setting, row.Nodes),
			map[string]any{"exp": "fig6", "setting": row.Setting, "nodes": row.Nodes},
			map[string]float64{
				"ours_insert": row.Ours.Insert, "ours_select": row.Ours.Select,
				"ours_threshold": row.Ours.Threshold, "ours_total": row.Ours.Total,
				"gather_insert": row.Gather.Insert, "gather_select": row.Gather.Select,
				"gather_threshold": row.Gather.Threshold, "gather_gather": row.Gather.Gather,
				"gather_total": row.Gather.Total,
			},
		)
	}
}

// AddDepthRows appends the Sec 6.3 recursion-depth rows.
func (r *Report) AddDepthRows(rows []DepthRow) {
	for _, row := range rows {
		r.Add(
			fmt.Sprintf("depth/k=%d", row.K),
			map[string]any{"exp": "depth", "k": row.K},
			map[string]float64{
				"depth_1pivot": row.Depth1, "depth_8pivot": row.Depth8, "ratio": row.Ratio,
			},
		)
	}
}

// AddAblationRows appends the Sec 5 optimization ablation rows.
func (r *Report) AddAblationRows(rows []AblationRow) {
	for _, row := range rows {
		r.Add(
			"ablation/"+row.Label,
			map[string]any{"exp": "ablation", "config": row.Label},
			map[string]float64{
				"fill_round_ns":   row.FirstBatchNS,
				"steady_round_ns": row.RoundNS,
			},
		)
	}
}

// AddInsertionRows appends the Lemma 2 / Theorem 3 validation rows.
func (r *Report) AddInsertionRows(rows []InsertionRow) {
	for _, row := range rows {
		r.Add(
			fmt.Sprintf("insertions/k=%d/p=%d", row.K, row.P),
			map[string]any{"exp": "insertions", "k": row.K, "p": row.P},
			map[string]float64{
				"mean_per_pe":           row.MeasuredMeanPerPE,
				"mean_per_pe_predicted": row.PredictedMeanPerPE,
				"max_pe":                row.MeasuredMaxPE,
				"max_pe_predicted":      row.PredictedMaxPE,
			},
		)
	}
}
