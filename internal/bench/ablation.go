package bench

import "io"

// AblationRow measures the effect of one Sec 5 optimization setting.
type AblationRow struct {
	Label string
	// FirstBatchNS is the virtual time of the reservoir fill round, which
	// local thresholding targets.
	FirstBatchNS float64
	// RoundNS is the steady-state per-round time, which blocked skipping
	// targets.
	RoundNS float64
}

// Ablation quantifies the two implementation optimizations of Sec 5 on a
// mid-sized configuration: first-batch local thresholding (bounds the fill
// round when b >> k) and 32-item blocked skipping (cheapens the
// steady-state scan). The paper states both "speed up processing of the
// items in a batch significantly".
func Ablation(s Scale, w io.Writer) []AblationRow {
	nodes := s.Nodes[min(1, len(s.Nodes)-1)]
	p := nodes * s.PEsPerNode
	k := s.WeakK[min(1, len(s.WeakK)-1)]
	b := s.WeakBatch[len(s.WeakBatch)-1] // large batch: b >> k
	fprintf(w, "\n== Sec 5 ablation: ours-8, %d PEs, b = %s, k = %s ==\n", p, fmtCount(b), fmtCount(k))
	fprintf(w, "%-34s %16s %16s\n", "configuration", "fill round (ms)", "steady round (ms)")
	variants := []struct {
		label        string
		noLT, noSkip bool
	}{
		{"both optimizations (paper)", false, false},
		{"no local thresholding", true, false},
		{"no blocked skipping", false, true},
		{"neither", true, true},
	}
	var out []AblationRow
	for _, v := range variants {
		r := Run(RunParams{
			P: p, K: k, BatchPerPE: b, Algo: Algos()[1],
			Warmup: 1, Measure: s.Measure,
			Seed: seedFor(s.Seed, 9, b, k), Model: s.Model,
			NoLocalThreshold: v.noLT, NoBlockedSkip: v.noSkip,
		})
		row := AblationRow{
			Label:        v.label,
			FirstBatchNS: r.TotalNS - r.RoundNS*float64(s.Measure),
			RoundNS:      r.RoundNS,
		}
		out = append(out, row)
		fprintf(w, "%-34s %16.3f %16.3f\n", v.label, row.FirstBatchNS/1e6, row.RoundNS/1e6)
	}
	return out
}
