package bench

import (
	"path/filepath"
	"testing"
	"time"
)

func TestReportRoundTrip(t *testing.T) {
	rep := NewReport("reservoir-loadgen", "unit")
	rep.Params = map[string]any{"mode": "wait"}
	rep.Add("clients=2,batch=100",
		map[string]any{"clients": 2, "batch": 100},
		map[string]float64{"throughput_items_per_s": 1e6, "latency_p99_ms": 3.5})
	if rep.Schema != SchemaVersion || rep.CPUs < 1 || rep.Go == "" {
		t.Fatalf("environment not stamped: %+v", rep)
	}

	path := filepath.Join(t.TempDir(), "BENCH_unit.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "reservoir-loadgen" || len(got.Results) != 1 {
		t.Fatalf("round trip: %+v", got)
	}
	r := got.Results[0]
	if r.Metrics["throughput_items_per_s"] != 1e6 || r.Metrics["latency_p99_ms"] != 3.5 {
		t.Fatalf("metrics lost: %+v", r.Metrics)
	}
}

func TestReadReportRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	rep := NewReport("x", "y")
	rep.Schema = "something/v9"
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReportFile(path); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

func TestSummarizeQuantiles(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 || s.P99MS != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
	// 100 durations: 1ms..100ms. Nearest-rank: p50 = 50ms, p95 = 95ms,
	// p99 = 99ms, max = 100ms, mean = 50.5ms.
	durs := make([]time.Duration, 100)
	for i := range durs {
		// Insert in shuffled-ish order to exercise the sort.
		durs[i] = time.Duration((i*37)%100+1) * time.Millisecond
	}
	s := Summarize(durs)
	if s.Count != 100 || s.P50MS != 50 || s.P95MS != 95 || s.P99MS != 99 || s.MaxMS != 100 {
		t.Fatalf("quantiles: %+v", s)
	}
	if s.MeanMS < 50.49 || s.MeanMS > 50.51 {
		t.Fatalf("mean: %+v", s)
	}

	m := map[string]float64{}
	s.Metrics("latency", m)
	if m["latency_p95_ms"] != 95 || m["latency_max_ms"] != 100 {
		t.Fatalf("metric merge: %v", m)
	}
}

func TestReportConverters(t *testing.T) {
	rep := NewReport("reservoir-bench", "conv")
	rep.AddFigRows([]FigRow{{Exp: "fig3", Algo: "ours", Nodes: 4, P: 16, K: 100, BatchB: 1000,
		Speedup: 3.7, Result: RunResult{RoundNS: 5e6, ThroughputPerPE: 2e5}}})
	rep.AddCompositionRows([]CompositionRow{{Setting: "strong B2", Nodes: 4,
		Ours: PhaseFractions{Insert: 0.4, Total: 0.6}, Gather: PhaseFractions{Gather: 0.5, Total: 1}}})
	rep.AddDepthRows([]DepthRow{{K: 1000, Depth1: 4.3, Depth8: 1.8, Ratio: 2.4}})
	rep.AddInsertionRows([]InsertionRow{{K: 100, P: 8, MeasuredMeanPerPE: 40, PredictedMeanPerPE: 42}})
	rep.AddAblationRows([]AblationRow{{Label: "neither", FirstBatchNS: 8e6, RoundNS: 2e6}})
	if len(rep.Results) != 5 {
		t.Fatalf("got %d results, want 5", len(rep.Results))
	}
	if rep.Results[0].Name != "fig3/ours/k=100/b=1000/n=4" {
		t.Fatalf("fig row name: %q", rep.Results[0].Name)
	}
	if rep.Results[0].Metrics["speedup"] != 3.7 {
		t.Fatalf("fig row metrics: %v", rep.Results[0].Metrics)
	}
	if rep.Results[4].Metrics["steady_round_ns"] != 2e6 {
		t.Fatalf("ablation metrics: %v", rep.Results[4].Metrics)
	}
}
