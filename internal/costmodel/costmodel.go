// Package costmodel converts counted operations into virtual time for the
// simulated machine (see DESIGN.md §2 and §4). The distributed algorithms
// execute for real; only their *reported* running times are computed from
// these per-operation charges, which makes experiments deterministic and
// independent of the host machine.
//
// The two-level scan cost reproduces the cache crossover of the paper's
// strong scaling experiments (Sec 6.4): once the per-PE mini-batch fits
// into cache, local processing gets disproportionally faster, producing the
// superlinear speedup bump of Figures 4 and 5.
package costmodel

import "math"

// Model holds the per-operation virtual-time charges, in nanoseconds.
type Model struct {
	// AlphaNS and BetaNS are the communication parameters α (per message)
	// and β (per 8-byte machine word); they are forwarded to simnet.
	AlphaNS float64
	BetaNS  float64

	// ScanHotNS / ScanColdNS is the per-item cost of the weighted skip scan
	// when the per-PE batch does / does not fit into cache, and CacheItems
	// is the crossover batch size. The crossover is linearly smoothed over
	// [CacheItems, 2*CacheItems].
	ScanHotNS  float64
	ScanColdNS float64
	CacheItems int

	// BlockedSkipFactor multiplies the scan cost when the 32-item blocked
	// (SIMD-style) skip of Sec 5 is enabled.
	BlockedSkipFactor float64

	// RNGNS is the cost per random variate.
	RNGNS float64

	// TreeLevelNS is the per-level cost of B+ tree operations (insert,
	// rank, select, split); an operation on a tree of n items charges
	// TreeLevelNS * log2(n+2).
	TreeLevelNS float64

	// QuickselectNS is the per-element cost of the sequential selection at
	// the gather baseline's root.
	QuickselectNS float64

	// PackNS is the per-machine-word cost of packing/unpacking gather
	// payloads.
	PackNS float64
}

// Default returns charges loosely calibrated to a ~2.5 GHz server core and
// the paper's InfiniBand interconnect. Absolute values are not meant to
// match the paper's hardware; the *ratios* (scan vs. RNG vs. tree ops vs.
// α/β) are what shape the reproduced figures.
func Default() Model {
	return Model{
		AlphaNS:           2000,
		BetaNS:            1,
		ScanHotNS:         0.4,
		ScanColdNS:        1.6,
		CacheItems:        1 << 15,
		BlockedSkipFactor: 0.4,
		RNGNS:             8,
		TreeLevelNS:       15,
		QuickselectNS:     4,
		PackNS:            0.25,
	}
}

// ScanPerItemNS returns the charge for touching one item of a batch of
// batchLen items during the skip scan.
func (m Model) ScanPerItemNS(batchLen int, blocked bool) float64 {
	c := m.ScanColdNS
	switch {
	case batchLen <= m.CacheItems:
		c = m.ScanHotNS
	case batchLen < 2*m.CacheItems:
		// Linear interpolation across the crossover region.
		f := float64(batchLen-m.CacheItems) / float64(m.CacheItems)
		c = m.ScanHotNS + f*(m.ScanColdNS-m.ScanHotNS)
	}
	if blocked {
		c *= m.BlockedSkipFactor
	}
	return c
}

// TreeOpNS returns the charge for one B+ tree operation on a tree currently
// holding size items.
func (m Model) TreeOpNS(size int) float64 {
	return m.TreeLevelNS * math.Log2(float64(size)+2)
}

// QuickselectCostNS returns the charge for selecting within n elements at
// the gather root (expected linear time).
func (m Model) QuickselectCostNS(n int) float64 {
	return m.QuickselectNS * float64(n)
}

// PackCostNS returns the charge for packing the given number of machine
// words.
func (m Model) PackCostNS(words int) float64 { return m.PackNS * float64(words) }
