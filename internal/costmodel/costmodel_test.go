package costmodel

import (
	"math"
	"testing"
)

func TestScanCostCrossover(t *testing.T) {
	m := Default()
	hot := m.ScanPerItemNS(m.CacheItems/2, false)
	cold := m.ScanPerItemNS(4*m.CacheItems, false)
	if hot != m.ScanHotNS {
		t.Errorf("hot cost = %v, want %v", hot, m.ScanHotNS)
	}
	if cold != m.ScanColdNS {
		t.Errorf("cold cost = %v, want %v", cold, m.ScanColdNS)
	}
	if hot >= cold {
		t.Error("cache model inverted: hot >= cold")
	}
	// Monotone non-decreasing through the crossover region.
	prev := 0.0
	for n := m.CacheItems / 2; n <= 3*m.CacheItems; n += m.CacheItems / 8 {
		c := m.ScanPerItemNS(n, false)
		if c < prev {
			t.Fatalf("scan cost not monotone at n=%d: %v < %v", n, c, prev)
		}
		prev = c
	}
	// Midpoint of the crossover is strictly between hot and cold.
	mid := m.ScanPerItemNS(m.CacheItems+m.CacheItems/2, false)
	if !(mid > hot && mid < cold) {
		t.Errorf("crossover midpoint %v not between %v and %v", mid, hot, cold)
	}
}

func TestBlockedSkipCheaper(t *testing.T) {
	m := Default()
	for _, n := range []int{100, m.CacheItems, 10 * m.CacheItems} {
		plain := m.ScanPerItemNS(n, false)
		blocked := m.ScanPerItemNS(n, true)
		if blocked >= plain {
			t.Errorf("blocked skip not cheaper at n=%d: %v >= %v", n, blocked, plain)
		}
		if math.Abs(blocked-plain*m.BlockedSkipFactor) > 1e-12 {
			t.Errorf("blocked factor wrong at n=%d", n)
		}
	}
}

func TestTreeOpLogarithmic(t *testing.T) {
	m := Default()
	if m.TreeOpNS(0) <= 0 {
		t.Error("tree op on empty tree should still cost something")
	}
	c1, c2 := m.TreeOpNS(1000), m.TreeOpNS(1000000)
	if ratio := c2 / c1; ratio > 2.5 || ratio < 1.5 {
		t.Errorf("tree op cost scaling looks non-logarithmic: %v vs %v", c1, c2)
	}
}

func TestLinearCharges(t *testing.T) {
	m := Default()
	if got := m.QuickselectCostNS(1000); got != 1000*m.QuickselectNS {
		t.Errorf("quickselect charge = %v", got)
	}
	if got := m.PackCostNS(64); got != 64*m.PackNS {
		t.Errorf("pack charge = %v", got)
	}
}
