// Package simnet simulates the paper's machine model (Sec 3): p processing
// elements (PEs) connected by a full-duplex, single-ported network in which
// transferring a message of ℓ machine words costs α + βℓ time.
//
// Each PE runs as its own goroutine and owns a virtual clock measured in
// nanoseconds. Local computation advances the clock through Work; messages
// carry their virtual arrival time, and receiving merges that time into the
// receiver's clock (clock = max(clock, arrival)). The algorithms under test
// therefore execute for real — real tree insertions, real message rounds —
// while the reported times come from the deterministic cost model rather
// than from noisy wall-clock measurement. This substitutes for the paper's
// 256-node InfiniBand cluster; see DESIGN.md §2.
package simnet

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// CostParams holds the communication cost parameters of the machine model.
type CostParams struct {
	// AlphaNS is the message startup latency α in nanoseconds.
	AlphaNS float64
	// BetaNS is the per-machine-word (8 byte) transfer time β in nanoseconds.
	BetaNS float64
}

// DefaultCost returns parameters loosely modeled on the paper's InfiniBand
// 4X EDR interconnect: ~2µs startup latency and ~1ns per 8-byte word
// (≈ 8 GB/s effective per-PE bandwidth).
func DefaultCost() CostParams { return CostParams{AlphaNS: 2000, BetaNS: 1} }

// Stats aggregates network traffic counters across the whole cluster.
type Stats struct {
	Messages int64
	Words    int64
}

// Cluster is a set of p PEs sharing a simulated network.
type Cluster struct {
	p        int
	cost     CostParams
	boxes    []*mailbox
	pes      []*PE
	messages atomic.Int64
	words    atomic.Int64
}

// NewCluster creates a cluster of p PEs with the given cost parameters.
func NewCluster(p int, cost CostParams) *Cluster {
	if p < 1 {
		panic("simnet: cluster needs at least one PE")
	}
	c := &Cluster{p: p, cost: cost, boxes: make([]*mailbox, p), pes: make([]*PE, p)}
	for i := range c.boxes {
		c.boxes[i] = newMailbox()
		c.pes[i] = &PE{id: i, c: c}
	}
	return c
}

// P returns the number of PEs.
func (c *Cluster) P() int { return c.p }

// Cost returns the communication cost parameters.
func (c *Cluster) Cost() CostParams { return c.cost }

// PE returns the persistent PE with the given id.
func (c *Cluster) PE(id int) *PE { return c.pes[id] }

// Stats returns a snapshot of the cluster-wide traffic counters.
func (c *Cluster) Stats() Stats {
	return Stats{Messages: c.messages.Load(), Words: c.words.Load()}
}

// MaxClock returns the largest virtual clock over all PEs. It must only be
// called while no Parallel section is running.
func (c *Cluster) MaxClock() float64 {
	var m float64
	for _, pe := range c.pes {
		if pe.clock > m {
			m = pe.clock
		}
	}
	return m
}

// ResetClocks sets every PE clock to zero (between experiments).
func (c *Cluster) ResetClocks() {
	for _, pe := range c.pes {
		pe.clock = 0
	}
}

// PendingMessages returns the number of undelivered messages across all
// mailboxes. After a completed SPMD section this should be zero; tests use
// it to detect leaked messages.
func (c *Cluster) PendingMessages() int {
	n := 0
	for _, b := range c.boxes {
		n += b.pending()
	}
	return n
}

// Parallel runs body concurrently on every PE (SPMD style) and returns when
// all have finished. Panics in a PE body are re-raised on the caller after
// all other PEs finished or deadlocked mailboxes were drained.
func (c *Cluster) Parallel(body func(pe *PE)) {
	var wg sync.WaitGroup
	panics := make([]any, c.p)
	wg.Add(c.p)
	for i := 0; i < c.p; i++ {
		//lint:allow determinism -- the SPMD PE launcher is the worker-owned path itself: each PE goroutine owns its sampler state exclusively and rendezvouses only through deterministic mailboxes
		go func(pe *PE) {
			defer wg.Done()
			defer func() {
				//lint:allow faultpanic -- PE panics are collected (never swallowed) and the primary is re-raised by Parallel after every PE lands; triage happens at that single re-raise point
				if r := recover(); r != nil {
					panics[pe.id] = r
					// Unblock any PE waiting on us by poisoning all boxes.
					for _, b := range c.boxes {
						b.poison()
					}
				}
			}()
			body(pe)
		}(c.pes[i])
	}
	wg.Wait()
	for _, b := range c.boxes {
		b.unpoison()
	}
	// Report the primary panic: prefer one that is not the secondary
	// "receive aborted" unwinding caused by the poison mechanism.
	primary, primaryID := any(nil), -1
	for id, p := range panics {
		if p == nil {
			continue
		}
		if _, aborted := p.(receiveAborted); !aborted || primary == nil {
			if _, primaryAborted := primary.(receiveAborted); primary == nil || primaryAborted {
				primary, primaryID = p, id
			}
		}
	}
	if primary != nil {
		panic(fmt.Sprintf("simnet: PE %d panicked: %v", primaryID, primary))
	}
}

// receiveAborted is the panic payload used to unwind PEs that were blocked
// in Recv when a peer PE panicked.
type receiveAborted struct{}

func (receiveAborted) String() string { return "simnet: receive aborted: a peer PE panicked" }

// PE is a processing element: one simulated node of the cluster.
type PE struct {
	id int
	c  *Cluster
	// clock is the PE's virtual time in nanoseconds. It is only touched by
	// the PE's own goroutine during a Parallel section.
	clock float64
	// SentMessages / SentWords count this PE's outgoing traffic.
	SentMessages int64
	SentWords    int64
}

// ID returns the PE's rank in 0..p-1.
func (pe *PE) ID() int { return pe.id }

// P returns the cluster size.
func (pe *PE) P() int { return pe.c.p }

// Clock returns the PE's current virtual time in nanoseconds.
func (pe *PE) Clock() float64 { return pe.clock }

// Work advances the PE's virtual clock by ns nanoseconds of local
// computation.
func (pe *PE) Work(ns float64) { pe.clock += ns }

// Send transfers a message of the given payload size (in 8-byte machine
// words) to PE `to`. Sending occupies the single-ported sender for
// α + β·words, and the message arrives at the receiver at the sender's
// post-send time (cut-through: startup and transfer overlap end-to-end).
func (pe *PE) Send(to, tag int, payload any, words int) {
	if words < 1 {
		words = 1
	}
	cost := pe.c.cost.AlphaNS + pe.c.cost.BetaNS*float64(words)
	pe.clock += cost
	pe.SentMessages++
	pe.SentWords += int64(words)
	pe.c.messages.Add(1)
	pe.c.words.Add(int64(words))
	pe.c.boxes[to].put(message{from: pe.id, tag: tag, payload: payload, arrive: pe.clock})
}

// Recv blocks until a message from `from` with the given tag arrives,
// merges its virtual arrival time into the PE's clock, and returns the
// payload.
func (pe *PE) Recv(from, tag int) any {
	m := pe.c.boxes[pe.id].get(from, tag)
	if m.arrive > pe.clock {
		pe.clock = m.arrive
	}
	return m.payload
}

// --- mailbox -------------------------------------------------------------

type message struct {
	from, tag int
	payload   any
	arrive    float64
}

// mailbox is a per-PE inbox supporting receive-with-matching on
// (sender, tag), like an MPI receive queue.
type mailbox struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queue    []message
	poisoned bool
}

func newMailbox() *mailbox {
	b := &mailbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *mailbox) put(m message) {
	b.mu.Lock()
	b.queue = append(b.queue, m)
	b.mu.Unlock()
	b.cond.Broadcast()
}

func (b *mailbox) get(from, tag int) message {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for i, m := range b.queue {
			if m.from == from && m.tag == tag {
				b.queue = append(b.queue[:i], b.queue[i+1:]...)
				return m
			}
		}
		if b.poisoned {
			panic(receiveAborted{})
		}
		b.cond.Wait()
	}
}

// poison wakes all blocked receivers with a panic; used to unwind cleanly
// when one PE in a Parallel section panicked.
func (b *mailbox) poison() {
	b.mu.Lock()
	b.poisoned = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

func (b *mailbox) unpoison() {
	b.mu.Lock()
	if b.poisoned {
		// Drop in-flight messages of the aborted section.
		b.queue = b.queue[:0]
		b.poisoned = false
	}
	b.mu.Unlock()
}

func (b *mailbox) pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queue)
}
