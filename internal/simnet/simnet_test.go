package simnet

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestPairwiseExchange(t *testing.T) {
	c := NewCluster(2, CostParams{AlphaNS: 100, BetaNS: 2})
	c.Parallel(func(pe *PE) {
		other := 1 - pe.ID()
		pe.Send(other, 0, pe.ID()*10, 5)
		got := pe.Recv(other, 0).(int)
		if got != other*10 {
			t.Errorf("PE %d received %d, want %d", pe.ID(), got, other*10)
		}
	})
	if n := c.PendingMessages(); n != 0 {
		t.Errorf("%d messages leaked", n)
	}
}

func TestClockAdvancesOnSendAndWork(t *testing.T) {
	c := NewCluster(2, CostParams{AlphaNS: 100, BetaNS: 2})
	c.Parallel(func(pe *PE) {
		if pe.ID() == 0 {
			pe.Work(50)
			pe.Send(1, 0, "x", 10) // cost 100 + 2*10 = 120
			if got := pe.Clock(); got != 170 {
				t.Errorf("sender clock = %v, want 170", got)
			}
		} else {
			pe.Recv(0, 0)
			// Receiver was idle at clock 0; message arrives at sender's
			// post-send time 170.
			if got := pe.Clock(); got != 170 {
				t.Errorf("receiver clock = %v, want 170", got)
			}
		}
	})
}

func TestBusyReceiverKeepsOwnClock(t *testing.T) {
	c := NewCluster(2, CostParams{AlphaNS: 10, BetaNS: 1})
	c.Parallel(func(pe *PE) {
		if pe.ID() == 0 {
			pe.Send(1, 0, nil, 1) // arrives at 11
		} else {
			pe.Work(1000)
			pe.Recv(0, 0)
			if got := pe.Clock(); got != 1000 {
				t.Errorf("busy receiver clock = %v, want 1000", got)
			}
		}
	})
}

func TestRecvMatchesSourceAndTag(t *testing.T) {
	c := NewCluster(3, DefaultCost())
	c.Parallel(func(pe *PE) {
		switch pe.ID() {
		case 0:
			// Send two messages with different tags, out of the order the
			// receiver asks for them.
			pe.Send(2, 7, "tag7", 1)
			pe.Send(2, 3, "tag3", 1)
		case 1:
			pe.Send(2, 3, "from1", 1)
		case 2:
			if got := pe.Recv(0, 3).(string); got != "tag3" {
				t.Errorf("Recv(0,3) = %q", got)
			}
			if got := pe.Recv(1, 3).(string); got != "from1" {
				t.Errorf("Recv(1,3) = %q", got)
			}
			if got := pe.Recv(0, 7).(string); got != "tag7" {
				t.Errorf("Recv(0,7) = %q", got)
			}
		}
	})
}

func TestFIFOPerSourceAndTag(t *testing.T) {
	c := NewCluster(2, DefaultCost())
	c.Parallel(func(pe *PE) {
		if pe.ID() == 0 {
			for i := 0; i < 100; i++ {
				pe.Send(1, 0, i, 1)
			}
		} else {
			for i := 0; i < 100; i++ {
				if got := pe.Recv(0, 0).(int); got != i {
					t.Fatalf("message %d arrived as %d", i, got)
				}
			}
		}
	})
}

func TestStatsCounting(t *testing.T) {
	c := NewCluster(4, DefaultCost())
	c.Parallel(func(pe *PE) {
		if pe.ID() != 0 {
			pe.Send(0, 0, pe.ID(), 8)
		} else {
			for i := 1; i < 4; i++ {
				pe.Recv(i, 0)
			}
		}
	})
	s := c.Stats()
	if s.Messages != 3 || s.Words != 24 {
		t.Errorf("stats = %+v, want 3 messages / 24 words", s)
	}
	if c.PE(1).SentMessages != 1 || c.PE(1).SentWords != 8 {
		t.Errorf("per-PE stats wrong: %d msgs %d words", c.PE(1).SentMessages, c.PE(1).SentWords)
	}
}

func TestResetClocks(t *testing.T) {
	c := NewCluster(2, DefaultCost())
	c.Parallel(func(pe *PE) { pe.Work(100) })
	if c.MaxClock() != 100 {
		t.Fatalf("MaxClock = %v", c.MaxClock())
	}
	c.ResetClocks()
	if c.MaxClock() != 0 {
		t.Fatalf("MaxClock after reset = %v", c.MaxClock())
	}
}

func TestMinWordsCharge(t *testing.T) {
	c := NewCluster(2, CostParams{AlphaNS: 10, BetaNS: 1})
	c.Parallel(func(pe *PE) {
		if pe.ID() == 0 {
			pe.Send(1, 0, nil, 0) // charged as 1 word
			if pe.Clock() != 11 {
				t.Errorf("clock = %v, want 11", pe.Clock())
			}
		} else {
			pe.Recv(0, 0)
		}
	})
}

func TestPanicPropagation(t *testing.T) {
	c := NewCluster(3, DefaultCost())
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate from Parallel")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boom") && !strings.Contains(s, "panicked") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	c.Parallel(func(pe *PE) {
		if pe.ID() == 1 {
			panic("boom")
		}
		// Other PEs block on a receive that will never be satisfied; the
		// poison mechanism must unblock them.
		pe.Recv(1, 99)
	})
}

func TestClusterUsableAfterPanic(t *testing.T) {
	c := NewCluster(2, DefaultCost())
	func() {
		defer func() { recover() }()
		c.Parallel(func(pe *PE) {
			if pe.ID() == 0 {
				panic("first")
			}
			pe.Recv(0, 0)
		})
	}()
	// The cluster must be reusable afterwards.
	var ran atomic.Int32
	c.Parallel(func(pe *PE) {
		ran.Add(1)
		other := 1 - pe.ID()
		pe.Send(other, 1, pe.ID(), 1)
		pe.Recv(other, 1)
	})
	if ran.Load() != 2 {
		t.Fatal("cluster not reusable after panic")
	}
}

func TestNewClusterValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p < 1")
		}
	}()
	NewCluster(0, DefaultCost())
}
