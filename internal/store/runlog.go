package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// RunLog is the persistence handle of one run. AppendRound and Checkpoint
// are called only from the run's ingest worker goroutine; the per-log
// mutex exists solely to coordinate with the store's interval-fsync
// goroutine and with Close, never with other runs — persistence adds no
// cross-run serialization.
type RunLog struct {
	st  *Store
	id  string
	dir string

	mu       sync.Mutex // guards the fields below
	f        *os.File   // active WAL segment (append-only)
	segStart uint64     // round the active segment begins at
	dirty    bool       // unsynced bytes pending (interval policy)

	// walBytes is the active segment's size: the bytes the service's
	// checkpoint-by-bytes policy measures.
	walBytes int64
}

func newRunLog(st *Store, id, dir string, f *os.File, segStart uint64, size int64) *RunLog {
	return &RunLog{st: st, id: id, dir: dir, f: f, segStart: segStart, walBytes: size}
}

func (l *RunLog) lock()   { l.mu.Lock() }
func (l *RunLog) unlock() { l.mu.Unlock() }

func segName(round uint64) string  { return fmt.Sprintf("wal-%016x.log", round) }
func snapName(round uint64) string { return fmt.Sprintf("snap-%016x.snap", round) }

// parseSeq extracts the round from a "wal-%016x.log"/"snap-%016x.snap"
// file name.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	v, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 16, 64)
	return v, err == nil
}

// AppendRound durably appends one round record to the active WAL segment
// (durability subject to the store's fsync policy). It must complete
// before the round is applied to the sampler: a crash after the append
// replays the round, a crash before it never acknowledged the round.
//
// A *failed* append must leave no trace: the caller reports an error and
// never applies the round, so bytes left behind by the failed attempt —
// a torn frame, or a complete frame whose fsync failed — would either
// shadow later acknowledged rounds or replay data the client was told
// was rejected. On any failure the segment is truncated back to its
// pre-append length; if even that fails, the log is poisoned (closed) so
// nothing can append behind inconsistent bytes.
func (l *RunLog) AppendRound(rec *RoundRecord) error {
	frame := EncodeRecord(rec)
	l.lock()
	defer l.unlock()
	if l.f == nil {
		return fmt.Errorf("store: run %s log is closed", l.id)
	}
	undo := func(cause error) error {
		if terr := l.f.Truncate(l.walBytes); terr != nil {
			l.f.Close()
			l.f = nil
			return l.st.noteErr(fmt.Errorf("store: run %s WAL poisoned (append: %v; truncate: %v)", l.id, cause, terr))
		}
		return l.st.noteErr(fmt.Errorf("store: append run %s: %w", l.id, cause))
	}
	start := time.Now()
	if _, err := l.f.Write(frame); err != nil {
		return undo(err)
	}
	if l.st.policy == FsyncAlways {
		fsyncStart := time.Now()
		if err := l.f.Sync(); err != nil {
			return undo(err)
		}
		l.st.fsyncSeconds.Observe(time.Since(fsyncStart).Seconds())
	} else {
		l.dirty = true
	}
	l.st.appendSeconds.Observe(time.Since(start).Seconds())
	l.walBytes += int64(len(frame))
	l.st.walAppends.Add(1)
	l.st.walBytesTotal.Add(int64(len(frame)))
	return nil
}

// WALBytes reports the size of the active segment — the bytes written
// since the last checkpoint (or run creation).
func (l *RunLog) WALBytes() int64 {
	l.lock()
	defer l.unlock()
	return l.walBytes
}

// Checkpoint atomically persists a full sampler snapshot taken at
// snap.Round and rotates the WAL: the snapshot file lands via tmp-file +
// rename, a fresh segment starting at the snapshot round becomes active,
// and superseded segments and snapshots are removed. If a crash interrupts
// any step, recovery still succeeds: round-stamped records make replay
// idempotent, so an old segment overlapping a newer snapshot is merely
// skipped work.
func (l *RunLog) Checkpoint(snap *Snapshot) error {
	if err := writeFileAtomic(l.dir, filepath.Join(l.dir, snapName(snap.Round)), EncodeSnapshot(snap)); err != nil {
		return l.st.noteErr(fmt.Errorf("store: checkpoint run %s: %w", l.id, err))
	}
	nf, err := os.OpenFile(filepath.Join(l.dir, segName(snap.Round)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return l.st.noteErr(fmt.Errorf("store: rotate run %s: %w", l.id, err))
	}
	syncDir(l.dir)

	l.lock()
	old := l.f
	l.f = nf
	l.segStart = snap.Round
	l.walBytes = 0
	l.dirty = false
	l.unlock()
	l.st.checkpoints.Add(1)

	if old != nil {
		old.Close()
	}
	// Remove what the retained snapshot history supersedes: keep the
	// store's configured number of newest snapshots, and every WAL
	// segment reachable from the oldest retained one (so recovery can
	// still roll back to any retained boundary).
	entries, _ := os.ReadDir(l.dir)
	var snaps []uint64
	for _, e := range entries {
		if r, ok := parseSeq(e.Name(), "snap-", ".snap"); ok {
			snaps = append(snaps, r)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] })
	cutoff := snap.Round
	retain := l.st.retain
	if retain < 1 {
		retain = 1
	}
	if len(snaps) >= retain {
		cutoff = snaps[retain-1]
	} else if len(snaps) > 0 {
		cutoff = snaps[len(snaps)-1]
	}
	for _, e := range entries {
		if r, ok := parseSeq(e.Name(), "wal-", ".log"); ok && r < cutoff {
			os.Remove(filepath.Join(l.dir, e.Name()))
		}
		if r, ok := parseSeq(e.Name(), "snap-", ".snap"); ok && r < cutoff {
			os.Remove(filepath.Join(l.dir, e.Name()))
		}
	}
	return nil
}

// sync flushes pending interval-policy writes; called by the store's
// background syncer. On failure the dirty flag stays set, so the next
// tick (or Close) retries — otherwise one transient fsync error would
// silently void the "loses at most the last interval" durability bound.
func (l *RunLog) sync() error {
	l.lock()
	defer l.unlock()
	if !l.dirty || l.f == nil {
		return nil
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.st.fsyncSeconds.Observe(time.Since(start).Seconds())
	l.dirty = false
	return nil
}

// Close flushes and closes the active segment and unregisters the log.
func (l *RunLog) Close() error {
	l.lock()
	var err error
	if l.f != nil {
		if l.st.policy != FsyncOff && l.dirty {
			if err = l.f.Sync(); err == nil {
				l.dirty = false
			}
		}
		cerr := l.f.Close()
		if err == nil {
			err = cerr
		}
		l.f = nil
	}
	l.unlock()
	l.st.unregister(l.id)
	return err
}

// writeFileAtomic writes data to path via a temp file in dir, fsyncing the
// file and then the directory, so the target name only ever refers to a
// complete file.
func writeFileAtomic(dir, path string, data []byte) error {
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so renames and creates within it are durable.
// Best effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// latestSnapshot loads the newest decodable snapshot in dir (nil if none).
func latestSnapshot(dir string) (*Snapshot, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var rounds []uint64
	for _, e := range entries {
		if r, ok := parseSeq(e.Name(), "snap-", ".snap"); ok {
			rounds = append(rounds, r)
		}
	}
	sort.Slice(rounds, func(i, j int) bool { return rounds[i] > rounds[j] })
	var firstErr error
	for _, r := range rounds {
		b, err := os.ReadFile(filepath.Join(dir, snapName(r)))
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		snap, err := DecodeSnapshot(b)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", snapName(r), err)
			}
			continue
		}
		return snap, nil
	}
	return nil, firstErr
}

// truncateActiveTail trims the newest WAL segment to its longest valid
// record prefix. Only the active segment can legitimately carry a torn
// tail (a crash mid-append); cutting it before the segment is reopened
// for appending keeps the file a pure record sequence, so rounds written
// after recovery stay reachable by the next recovery. A clean torn tail
// (partial final frame) is simply dropped; if the cut is due to actual
// corruption (CRC mismatch, bad magic — the scanner cannot resync past
// it, so later records are unreachable regardless), the original segment
// is first preserved as <name>.corrupt for manual inspection. Returns the
// number of bytes dropped (0 for a clean tail).
func truncateActiveTail(dir string) (int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	newest, found := uint64(0), false
	for _, e := range entries {
		if r, ok := parseSeq(e.Name(), "wal-", ".log"); ok && (!found || r > newest) {
			newest, found = r, true
		}
	}
	if !found {
		return 0, nil
	}
	path := filepath.Join(dir, segName(newest))
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	// Streamed scan (one record in memory): find the valid-prefix offset.
	consumed, derr := replaySegment(path, func(*RoundRecord) error { return nil })
	if consumed == fi.Size() && derr == nil {
		return 0, nil
	}
	if derr != nil {
		// Not a torn tail but corruption: keep the full original around
		// (invisible to segment scans — wrong suffix) before cutting.
		if werr := copyFile(path, path+".corrupt"); werr != nil {
			return 0, fmt.Errorf("%v (and preserving the corrupt segment failed: %v)", derr, werr)
		}
	}
	if err := os.Truncate(path, consumed); err != nil {
		return 0, err
	}
	return fi.Size() - consumed, nil
}

// copyFile streams src to dst (no in-memory materialization).
func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// segmentStarts lists the start rounds of every WAL segment in dir,
// ascending. Segments never overlap in round ranges (rotation happens at
// the checkpoint round), so ascending segment order is round order.
func segmentStarts(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var starts []uint64
	for _, e := range entries {
		if r, ok := parseSeq(e.Name(), "wal-", ".log"); ok {
			starts = append(starts, r)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	return starts, nil
}
