//go:build !unix

package store

import "os"

// Non-unix platforms have no flock; the store runs unlocked there.
func acquireDirLock(string) (*os.File, error) { return nil, nil }

func releaseDirLock(*os.File) {}
