//go:build unix

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// acquireDirLock takes an exclusive advisory lock on <dir>/LOCK so two
// processes cannot append to the same store concurrently (interleaved WAL
// frames and dueling manifests would scramble recovery). flock releases
// automatically when the process dies, so a crash never leaves a stale
// lock.
func acquireDirLock(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s is already in use by another process", dir)
	}
	return f, nil
}

func releaseDirLock(f *os.File) {
	if f == nil {
		return
	}
	_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	f.Close()
}
