// Package store persists reservoir-serve runs so a service restart (or
// crash) loses no accepted work: each run has an append-only write-ahead
// log of CRC-framed round records plus periodic full sampler snapshots
// written with atomic renames, and the store keeps a small manifest with
// the run-ID counter. The serving layer writes records from each run's
// ingest worker goroutine (the sole sampler owner), so persistence rides
// the async pipeline without any cross-run lock. See DESIGN.md §6 for the
// on-disk format and the crash-consistency argument.
package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"reservoir/internal/workload"
)

// On-disk framing constants. Everything is little endian.
const (
	// recordMagic starts every WAL record frame.
	recordMagic = uint32(0x5256574C) // "LWVR"
	// snapMagic starts every snapshot file.
	snapMagic = uint32(0x52565350) // "PSVR"
	// formatVersion tags both frames; decoding rejects other versions.
	formatVersion = byte(1)

	// recRound is the only record type so far: one ingest round.
	recRound = byte(1)

	// Payload kinds inside a round record.
	payloadExplicit  = byte(1)
	payloadSynthetic = byte(2)

	// MaxRecordLen caps a record payload; longer length fields are treated
	// as corruption. It comfortably exceeds the service's request body
	// limit, so no valid round is ever rejected.
	MaxRecordLen = 1 << 29

	// recordOverhead is the framing around a payload: magic, version,
	// type, length, CRC.
	recordOverhead = 4 + 1 + 1 + 4 + 4
)

// Item is one weighted stream element as persisted in explicit-round
// records — an alias of the sampler item, so the serving layer can hand
// its pooled batch slices to EncodeRecord without a per-item copy
// (encoding serializes synchronously; records never retain the slices).
type Item = workload.Item

// RoundRecord is one WAL entry: the complete input of one ingest round.
// Round is the run's round counter *before* the round applies (applying
// the record advances the run to Round+1). Exactly one of Batches
// (explicit per-PE mini-batches) or Synthetic (the JSON synthetic spec the
// round was generated from) is set; synthetic sources derive their batches
// deterministically from (seed, pe, round), so storing the spec replays
// the identical data.
type RoundRecord struct {
	Round     uint64
	Batches   [][]Item
	Synthetic []byte
}

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// encodePayload serializes the record body (everything the CRC covers
// beyond the frame header).
func (r *RoundRecord) encodePayload() []byte {
	if r.Synthetic != nil {
		b := make([]byte, 0, 8+1+4+len(r.Synthetic))
		b = appendU64(b, r.Round)
		b = append(b, payloadSynthetic)
		b = appendU32(b, uint32(len(r.Synthetic)))
		return append(b, r.Synthetic...)
	}
	n := 0
	for _, batch := range r.Batches {
		n += 4 + 16*len(batch)
	}
	b := make([]byte, 0, 8+1+4+n)
	b = appendU64(b, r.Round)
	b = append(b, payloadExplicit)
	b = appendU32(b, uint32(len(r.Batches)))
	for _, batch := range r.Batches {
		b = appendU32(b, uint32(len(batch)))
		for _, it := range batch {
			b = appendU64(b, math.Float64bits(it.W))
			b = appendU64(b, it.ID)
		}
	}
	return b
}

// EncodeRecord frames one round record: magic, version, type, payload
// length, payload, CRC32 (IEEE, over version+type+length+payload).
func EncodeRecord(r *RoundRecord) []byte {
	payload := r.encodePayload()
	b := make([]byte, 0, recordOverhead+len(payload))
	b = appendU32(b, recordMagic)
	b = append(b, formatVersion, recRound)
	b = appendU32(b, uint32(len(payload)))
	b = append(b, payload...)
	crc := crc32.ChecksumIEEE(b[4:])
	return appendU32(b, crc)
}

// decodeRound parses a round-record payload. Every length field is checked
// against the actual remaining bytes before any allocation, so
// length-lying inputs fail fast instead of over-allocating.
func decodeRound(p []byte) (*RoundRecord, error) {
	if len(p) < 8+1+4 {
		return nil, fmt.Errorf("store: short round record (%d bytes)", len(p))
	}
	rec := &RoundRecord{Round: binary.LittleEndian.Uint64(p)}
	kind := p[8]
	p = p[9:]
	switch kind {
	case payloadSynthetic:
		n := binary.LittleEndian.Uint32(p)
		p = p[4:]
		if uint64(n) != uint64(len(p)) {
			return nil, fmt.Errorf("store: synthetic spec length %d, have %d bytes", n, len(p))
		}
		if n == 0 {
			// A nil Synthetic would flip the record's kind to explicit on
			// re-encode/replay; no valid writer emits an empty spec.
			return nil, fmt.Errorf("store: empty synthetic spec")
		}
		rec.Synthetic = append([]byte(nil), p...)
		return rec, nil
	case payloadExplicit:
		nb := binary.LittleEndian.Uint32(p)
		p = p[4:]
		// Each batch needs at least its 4-byte length prefix.
		if uint64(nb)*4 > uint64(len(p)) {
			return nil, fmt.Errorf("store: record claims %d batches, have %d bytes", nb, len(p))
		}
		rec.Batches = make([][]Item, nb)
		for i := range rec.Batches {
			if len(p) < 4 {
				return nil, fmt.Errorf("store: truncated batch header")
			}
			n := binary.LittleEndian.Uint32(p)
			p = p[4:]
			if uint64(n)*16 > uint64(len(p)) {
				return nil, fmt.Errorf("store: batch claims %d items, have %d bytes", n, len(p))
			}
			items := make([]Item, n)
			for j := range items {
				items[j] = Item{
					W:  math.Float64frombits(binary.LittleEndian.Uint64(p)),
					ID: binary.LittleEndian.Uint64(p[8:]),
				}
				p = p[16:]
			}
			rec.Batches[i] = items
		}
		if len(p) != 0 {
			return nil, fmt.Errorf("store: %d trailing bytes in round record", len(p))
		}
		return rec, nil
	default:
		return nil, fmt.Errorf("store: unknown round payload kind %d", kind)
	}
}

// DecodeRecords parses every complete, checksummed record from one WAL
// segment held in memory. Scanning stops at the first torn or corrupt
// frame — the expected state after a crash mid-append — and the valid
// prefix is returned along with the number of bytes it covers. A nil
// error with consumed < len(b) means a torn tail was (safely) discarded.
// It is a thin wrapper over scanFrames, the same scanner recovery uses,
// so the fuzz target exercises the production framing rules.
func DecodeRecords(b []byte) (recs []*RoundRecord, consumed int, err error) {
	n, err := scanFrames(bytes.NewReader(b), func(rec *RoundRecord) error {
		recs = append(recs, rec)
		return nil
	})
	return recs, int(n), err
}

// replaySegment streams one WAL segment's records to fn without ever
// materializing more than one record: recovery memory stays O(largest
// record) even for runs whose WAL holds their entire ingest history
// (windowed runs and gather clusters never checkpoint).
func replaySegment(path string, fn func(*RoundRecord) error) (consumed int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return scanFrames(f, fn)
}

// scanFrames is THE record scanner: it walks CRC-framed records from r,
// delivering them to fn one at a time, and returns the byte offset of the
// valid prefix it delivered. A torn tail (truncated final frame) ends the
// scan silently (nil error); any other corruption returns an error after
// the valid prefix has been delivered. An error from fn aborts the scan
// and is returned as-is. Every consumer of the format — recovery replay,
// tail truncation, and DecodeRecords (which the fuzz target hammers) —
// goes through this one implementation.
func scanFrames(r io.Reader, fn func(*RoundRecord) error) (consumed int64, err error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [10]byte // magic, version, type, payload length
	var body []byte
	chunk := make([]byte, 64<<10)
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return consumed, nil // clean end or torn header
			}
			return consumed, err
		}
		if binary.LittleEndian.Uint32(hdr[:]) != recordMagic {
			return consumed, fmt.Errorf("store: bad record magic")
		}
		if hdr[4] != formatVersion {
			return consumed, fmt.Errorf("store: unsupported record version %d", hdr[4])
		}
		plen := binary.LittleEndian.Uint32(hdr[6:])
		if plen > MaxRecordLen {
			return consumed, fmt.Errorf("store: record length %d exceeds limit", plen)
		}
		// Read the payload in bounded chunks: allocation tracks the bytes
		// actually present, so a length-lying header on a short (torn or
		// corrupt) file cannot force a huge up-front allocation — the same
		// no-over-allocation rule every other decoder here follows.
		need := int(plen) + 4 // payload + CRC
		body = body[:0]
		torn := false
		for rem := need; rem > 0; {
			n := min(rem, len(chunk))
			if _, err := io.ReadFull(br, chunk[:n]); err != nil {
				if err == io.EOF || err == io.ErrUnexpectedEOF {
					torn = true
					break
				}
				return consumed, err
			}
			body = append(body, chunk[:n]...)
			rem -= n
		}
		if torn {
			return consumed, nil // torn payload
		}
		crc := crc32.NewIEEE()
		crc.Write(hdr[4:])
		crc.Write(body[:plen])
		if crc.Sum32() != binary.LittleEndian.Uint32(body[plen:]) {
			return consumed, fmt.Errorf("store: record CRC mismatch")
		}
		if hdr[5] != recRound {
			return consumed, fmt.Errorf("store: unknown record type %d", hdr[5])
		}
		rec, derr := decodeRound(body[:plen])
		if derr != nil {
			return consumed, derr
		}
		if err := fn(rec); err != nil {
			return consumed, err
		}
		consumed += int64(len(hdr)) + int64(need)
	}
}

// Snapshot is one full sampler checkpoint: the run's round counter at the
// moment of the snapshot, an opaque sampler-kind tag (interpreted by the
// serving layer), and the serialized sampler state.
type Snapshot struct {
	Round uint64
	Kind  byte
	Blob  []byte
}

// EncodeSnapshot frames a snapshot file: magic, version, kind, round,
// blob length, blob, CRC32 (over everything after the magic).
func EncodeSnapshot(s *Snapshot) []byte {
	b := make([]byte, 0, 4+1+1+8+4+len(s.Blob)+4)
	b = appendU32(b, snapMagic)
	b = append(b, formatVersion, s.Kind)
	b = appendU64(b, s.Round)
	b = appendU32(b, uint32(len(s.Blob)))
	b = append(b, s.Blob...)
	return appendU32(b, crc32.ChecksumIEEE(b[4:]))
}

// DecodeSnapshot parses and verifies a snapshot file.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	const hdr = 4 + 1 + 1 + 8 + 4
	if len(b) < hdr+4 {
		return nil, fmt.Errorf("store: short snapshot file (%d bytes)", len(b))
	}
	if binary.LittleEndian.Uint32(b) != snapMagic {
		return nil, fmt.Errorf("store: bad snapshot magic")
	}
	if b[4] != formatVersion {
		return nil, fmt.Errorf("store: unsupported snapshot version %d", b[4])
	}
	s := &Snapshot{Kind: b[5], Round: binary.LittleEndian.Uint64(b[6:])}
	blobLen := binary.LittleEndian.Uint32(b[14:])
	if uint64(blobLen) != uint64(len(b)-hdr-4) {
		return nil, fmt.Errorf("store: snapshot blob length %d, have %d bytes", blobLen, len(b)-hdr-4)
	}
	want := binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(b[4:len(b)-4]) != want {
		return nil, fmt.Errorf("store: snapshot CRC mismatch")
	}
	s.Blob = append([]byte(nil), b[hdr:len(b)-4]...)
	return s, nil
}
