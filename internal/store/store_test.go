package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func mkRecord(round uint64, nBatches, nItems int) *RoundRecord {
	rec := &RoundRecord{Round: round, Batches: make([][]Item, nBatches)}
	for i := range rec.Batches {
		items := make([]Item, nItems)
		for j := range items {
			items[j] = Item{W: float64(round)*10 + float64(i) + float64(j)/16, ID: round<<32 | uint64(i)<<16 | uint64(j)}
		}
		rec.Batches[i] = items
	}
	return rec
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []*RoundRecord{
		mkRecord(0, 4, 3),
		{Round: 1, Synthetic: []byte(`{"batch_len":100}`)},
		mkRecord(2, 1, 0),
	}
	var buf []byte
	for _, r := range recs {
		buf = append(buf, EncodeRecord(r)...)
	}
	got, consumed, err := DecodeRecords(buf)
	if err != nil {
		t.Fatal(err)
	}
	if consumed != len(buf) {
		t.Fatalf("consumed %d of %d bytes", consumed, len(buf))
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i, r := range recs {
		g := got[i]
		if g.Round != r.Round || !bytes.Equal(g.Synthetic, r.Synthetic) || len(g.Batches) != len(r.Batches) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, g, r)
		}
		for b := range r.Batches {
			if len(g.Batches[b]) != len(r.Batches[b]) {
				t.Fatalf("record %d batch %d length mismatch", i, b)
			}
			for j := range r.Batches[b] {
				if g.Batches[b][j] != r.Batches[b][j] {
					t.Fatalf("record %d batch %d item %d mismatch", i, b, j)
				}
			}
		}
	}
}

func TestRecordTornTail(t *testing.T) {
	full := EncodeRecord(mkRecord(0, 2, 5))
	torn := append(append([]byte(nil), full...), EncodeRecord(mkRecord(1, 2, 5))[:17]...)
	recs, consumed, err := DecodeRecords(torn)
	if err != nil {
		t.Fatalf("torn tail must not be an error, got %v", err)
	}
	if len(recs) != 1 || consumed != len(full) {
		t.Fatalf("got %d records, consumed %d (want 1, %d)", len(recs), consumed, len(full))
	}
}

func TestRecordCorruption(t *testing.T) {
	full := EncodeRecord(mkRecord(3, 2, 8))
	// Bit-flip every byte position in turn: decoding must never succeed
	// with altered content and never panic.
	for i := range full {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x40
		recs, _, err := DecodeRecords(mut)
		if err == nil && len(recs) == 1 {
			r := recs[0]
			if r.Round != 3 || len(r.Batches) != 2 {
				t.Fatalf("flip at %d decoded to wrong content", i)
			}
			// A flip that still decodes identically would be a CRC
			// collision; with a single-bit flip that is impossible.
			t.Fatalf("flip at %d went undetected", i)
		}
	}
	// Length-lying: claim a huge payload.
	lie := append([]byte(nil), full...)
	lie[6], lie[7], lie[8], lie[9] = 0xff, 0xff, 0xff, 0x7f
	if _, _, err := DecodeRecords(lie); err == nil {
		t.Fatal("length-lying record accepted")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := &Snapshot{Round: 42, Kind: 7, Blob: []byte("sampler-state-blob")}
	b := EncodeSnapshot(s)
	got, err := DecodeSnapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != s.Round || got.Kind != s.Kind || !bytes.Equal(got.Blob, s.Blob) {
		t.Fatalf("round-trip mismatch: %+v vs %+v", got, s)
	}
	for i := range b {
		mut := append([]byte(nil), b...)
		mut[i] ^= 0x10
		if _, err := DecodeSnapshot(mut); err == nil {
			t.Fatalf("snapshot flip at %d went undetected", i)
		}
	}
	if _, err := DecodeSnapshot(b[:len(b)-3]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

// collectRecords replays a run's WAL into a slice (tests only; production
// recovery streams records one at a time).
func collectRecords(t *testing.T, st *Store, id string, from uint64) ([]*RoundRecord, error) {
	t.Helper()
	var recs []*RoundRecord
	_, warn, err := st.ReplayRecords(id, from, func(r *RoundRecord) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("ReplayRecords(%s): %v", id, err)
	}
	return recs, warn
}

func TestStoreCreateLoadDelete(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, WithFsync(FsyncOff))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetNextID(3); err != nil {
		t.Fatal(err)
	}
	l, err := st.CreateRun("r3", []byte(`{"k":16}`))
	if err != nil {
		t.Fatal(err)
	}
	for round := uint64(0); round < 5; round++ {
		if err := l.AppendRound(mkRecord(round, 2, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if l.WALBytes() == 0 {
		t.Fatal("WALBytes not tracked")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// While a store is open, the directory is exclusively flocked.
	if _, err := Open(dir); err == nil {
		t.Fatal("double-open of a locked store dir must fail")
	}
	if err := st.Close(); err != nil { // releases the directory lock
		t.Fatal(err)
	}

	// Reopen as a fresh store (a restart).
	st2, err := Open(dir, WithFsync(FsyncOff))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.NextID() != 3 {
		t.Fatalf("next_id = %d, want 3", st2.NextID())
	}
	ids, err := st2.ListRuns()
	if err != nil || len(ids) != 1 || ids[0] != "r3" {
		t.Fatalf("ListRuns = %v, %v", ids, err)
	}
	rs, l2, err := st2.LoadRun("r3")
	if err != nil {
		t.Fatal(err)
	}
	if string(rs.Config) != `{"k":16}` {
		t.Fatalf("config = %s", rs.Config)
	}
	recs, warn := collectRecords(t, st2, "r3", 0)
	if rs.Snapshot != nil || len(recs) != 5 || rs.Warning != nil || warn != nil {
		t.Fatalf("state: snap=%v records=%d warns=%v/%v", rs.Snapshot, len(recs), rs.Warning, warn)
	}
	for i, r := range recs {
		if r.Round != uint64(i) {
			t.Fatalf("record %d has round %d", i, r.Round)
		}
	}
	// Appends continue in the same segment.
	if err := l2.AppendRound(mkRecord(5, 2, 4)); err != nil {
		t.Fatal(err)
	}
	l2.Close()

	if err := st2.DeleteRun("r3"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "runs", "r3")); !os.IsNotExist(err) {
		t.Fatalf("run dir survives delete: %v", err)
	}
}

func TestCheckpointRotation(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, WithFsync(FsyncOff))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	l, err := st.CreateRun("r1", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	for round := uint64(0); round < 4; round++ {
		if err := l.AppendRound(mkRecord(round, 1, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Checkpoint(&Snapshot{Round: 4, Kind: 1, Blob: []byte("state@4")}); err != nil {
		t.Fatal(err)
	}
	if l.WALBytes() != 0 {
		t.Fatalf("WALBytes = %d after checkpoint", l.WALBytes())
	}
	// Two more rounds after the checkpoint, then a second checkpoint.
	for round := uint64(4); round < 6; round++ {
		if err := l.AppendRound(mkRecord(round, 1, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Checkpoint(&Snapshot{Round: 6, Kind: 1, Blob: []byte("state@6")}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendRound(mkRecord(6, 1, 2)); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Old segments and snapshots are gone.
	entries, _ := os.ReadDir(filepath.Join(dir, "runs", "r1"))
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	for _, n := range names {
		if n == segName(0) || n == segName(4) || n == snapName(4) {
			t.Fatalf("superseded file %s survives rotation (have %v)", n, names)
		}
	}

	rs, l2, err := st.LoadRun("r1")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rs.Snapshot == nil || rs.Snapshot.Round != 6 || string(rs.Snapshot.Blob) != "state@6" {
		t.Fatalf("snapshot: %+v", rs.Snapshot)
	}
	recs, warn := collectRecords(t, st, "r1", rs.Snapshot.Round)
	if len(recs) != 1 || recs[0].Round != 6 || warn != nil {
		t.Fatalf("records after snapshot: %d (warn %v)", len(recs), warn)
	}
}

func TestLoadRunTornAndStaleOverlap(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, WithFsync(FsyncOff))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	l, err := st.CreateRun("r1", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	for round := uint64(0); round < 3; round++ {
		if err := l.AppendRound(mkRecord(round, 1, 2)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash between snapshot write and WAL rotation: the snapshot exists
	// but the old segment (rounds 0-2) is still the active one.
	snapPath := filepath.Join(dir, "runs", "r1", snapName(2))
	if err := os.WriteFile(snapPath, EncodeSnapshot(&Snapshot{Round: 2, Kind: 1, Blob: []byte("s2")}), 0o644); err != nil {
		t.Fatal(err)
	}
	// And a torn append at the tail.
	f, err := os.OpenFile(filepath.Join(dir, "runs", "r1", segName(0)), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(EncodeRecord(mkRecord(3, 1, 2))[:11])
	f.Close()
	l.Close()

	rs, l2, err := st.LoadRun("r1")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rs.Snapshot == nil || rs.Snapshot.Round != 2 {
		t.Fatalf("snapshot: %+v", rs.Snapshot)
	}
	// Rounds 0 and 1 are covered by the snapshot; round 2 replays; the
	// torn round-3 record is discarded.
	recs, warn := collectRecords(t, st, "r1", rs.Snapshot.Round)
	if len(recs) != 1 || recs[0].Round != 2 || warn != nil {
		t.Fatalf("records: %+v (warn %v)", recs, warn)
	}
}

func TestTornTailTruncatedBeforeAppend(t *testing.T) {
	// Rounds appended after a crash recovery must stay recoverable: the
	// torn tail left by the crash is truncated when the run is loaded, so
	// the active segment remains a pure record sequence.
	dir := t.TempDir()
	st, err := Open(dir, WithFsync(FsyncOff))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	l, err := st.CreateRun("r1", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	for round := uint64(0); round < 2; round++ {
		if err := l.AppendRound(mkRecord(round, 1, 3)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Crash mid-append: a partial frame at the tail.
	segPath := filepath.Join(dir, "runs", "r1", segName(0))
	f, err := os.OpenFile(segPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(EncodeRecord(mkRecord(2, 1, 3))[:13])
	f.Close()

	// First recovery: sees rounds 0-1, truncates the torn tail, appends
	// round 2 afresh.
	rs, l2, err := st.LoadRun("r1")
	if err != nil {
		t.Fatal(err)
	}
	recs, warn := collectRecords(t, st, "r1", 0)
	if len(recs) != 2 || warn != nil || rs.Warning == nil {
		t.Fatalf("first recovery: %d records, warns %v/%v", len(recs), warn, rs.Warning)
	}
	if err := l2.AppendRound(mkRecord(2, 1, 3)); err != nil {
		t.Fatal(err)
	}
	l2.Close()

	// Second recovery must see all three rounds — nothing shadowed.
	rs2, l3, err := st.LoadRun("r1")
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	recs2, warn2 := collectRecords(t, st, "r1", 0)
	if len(recs2) != 3 || warn2 != nil || rs2.Warning != nil {
		t.Fatalf("second recovery: %d records, warns %v/%v (want 3, nil, nil)", len(recs2), warn2, rs2.Warning)
	}
	for i, r := range recs2 {
		if r.Round != uint64(i) {
			t.Fatalf("record %d has round %d", i, r.Round)
		}
	}
}

func TestLoadRunRefusesResetOnCorruptSnapshot(t *testing.T) {
	// A checkpointed run whose snapshots have all become unreadable must
	// NOT load as a fresh round-0 run — that would silently discard
	// acknowledged data and scramble the WAL's round numbering.
	dir := t.TempDir()
	st, err := Open(dir, WithFsync(FsyncOff))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	l, err := st.CreateRun("r1", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	for round := uint64(0); round < 3; round++ {
		if err := l.AppendRound(mkRecord(round, 1, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Checkpoint(&Snapshot{Round: 3, Kind: 1, Blob: []byte("state@3")}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Corrupt the (only) snapshot.
	snapPath := filepath.Join(dir, "runs", "r1", snapName(3))
	b, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(snapPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.LoadRun("r1"); err == nil {
		t.Fatal("LoadRun accepted a checkpointed run with no decodable snapshot")
	}
	// The files survive for inspection.
	if _, err := os.Stat(snapPath); err != nil {
		t.Fatalf("snapshot file removed: %v", err)
	}
}

func TestManifestRejectsWrongVersion(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST.json"), []byte(`{"version":99,"next_id":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("wrong-version manifest accepted")
	}
}
