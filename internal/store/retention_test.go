package store

import (
	"os"
	"path/filepath"
	"testing"
)

// TestSnapshotRetentionKeepsHistory: with WithSnapshotRetention(n) the n
// newest checkpoints stay readable (cluster-node recovery rolls back to
// whichever retained boundary the survivors agree on), WAL segments
// reachable from the oldest retained snapshot survive, and everything
// older is pruned.
func TestSnapshotRetentionKeepsHistory(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, WithFsync(FsyncOff), WithSnapshotRetention(3))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	l, err := st.CreateRun("n0", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	// Checkpoint after every round, like a cluster node does.
	for round := uint64(0); round < 6; round++ {
		if err := l.AppendRound(mkRecord(round, 1, 2)); err != nil {
			t.Fatal(err)
		}
		if err := l.Checkpoint(&Snapshot{Round: round + 1, Kind: 9, Blob: []byte{byte(round + 1)}}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	rounds, err := st.Snapshots("n0")
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 3 || rounds[0] != 4 || rounds[1] != 5 || rounds[2] != 6 {
		t.Fatalf("retained snapshots = %v, want [4 5 6]", rounds)
	}
	for _, r := range rounds {
		snap, err := st.ReadSnapshot("n0", r)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Round != r || len(snap.Blob) != 1 || snap.Blob[0] != byte(r) {
			t.Fatalf("snapshot @%d = %+v", r, snap)
		}
	}
	if _, err := st.ReadSnapshot("n0", 3); err == nil {
		t.Fatal("pruned snapshot still readable")
	}
	// WAL segments older than the oldest retained snapshot are pruned.
	entries, _ := os.ReadDir(filepath.Join(dir, "runs", "n0"))
	for _, e := range entries {
		if r, ok := parseSeq(e.Name(), "wal-", ".log"); ok && r < 4 {
			t.Fatalf("stale segment %s survived retention pruning", e.Name())
		}
	}

	// Default retention (1) still prunes aggressively.
	st2, err := Open(t.TempDir(), WithFsync(FsyncOff))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	l2, err := st2.CreateRun("r", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	for round := uint64(0); round < 3; round++ {
		if err := l2.AppendRound(mkRecord(round, 1, 2)); err != nil {
			t.Fatal(err)
		}
		if err := l2.Checkpoint(&Snapshot{Round: round + 1, Kind: 9, Blob: []byte{1}}); err != nil {
			t.Fatal(err)
		}
	}
	l2.Close()
	rounds, err = st2.Snapshots("r")
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 1 || rounds[0] != 3 {
		t.Fatalf("default retention kept %v, want [3]", rounds)
	}
}
