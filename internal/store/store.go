package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"reservoir/internal/metrics"
)

// FsyncPolicy controls when WAL appends reach stable storage.
type FsyncPolicy int

const (
	// FsyncInterval (the default) batches fsyncs on a background timer: a
	// crash loses at most the last interval of accepted rounds to a power
	// failure (an OS-level crash of just the process loses nothing).
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways fsyncs after every appended record.
	FsyncAlways
	// FsyncOff never fsyncs; durability rests on the OS page cache.
	FsyncOff
)

// String names the policy as accepted by ParseFsyncPolicy.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncOff:
		return "off"
	default:
		return "interval"
	}
}

// ParseFsyncPolicy parses "always", "interval", or "off".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "", "interval":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	default:
		return 0, fmt.Errorf("store: unknown fsync policy %q (want always, interval, or off)", s)
	}
}

// manifest is the store-wide metadata file (MANIFEST.json, atomic rename).
// NextID persists the service's run-ID counter so IDs are never reused
// across restarts, even for deleted runs.
type manifest struct {
	Version int   `json:"version"`
	NextID  int64 `json:"next_id"`
}

const manifestVersion = 1

// Status is the store health summary surfaced by GET /healthz.
type Status struct {
	Dir         string `json:"dir"`
	Fsync       string `json:"fsync"`
	Runs        int    `json:"runs"`
	WALAppends  int64  `json:"wal_appends"`
	WALBytes    int64  `json:"wal_bytes"`
	Checkpoints int64  `json:"checkpoints"`
	LastError   string `json:"last_error,omitempty"`
}

// Store is one persistence directory: MANIFEST.json plus one subdirectory
// per run under runs/, each holding config.json, WAL segments, and
// snapshot files.
type Store struct {
	dir      string
	policy   FsyncPolicy
	interval time.Duration
	retain   int // snapshots kept per run (>= 1)

	mu   sync.Mutex // guards manifest writes and the log registry
	man  manifest
	logs map[string]*RunLog

	walAppends    atomic.Int64
	walBytesTotal atomic.Int64
	checkpoints   atomic.Int64
	lastErr       atomic.Pointer[string]

	// Optional /metrics instrumentation (nil when WithMetrics was not
	// given; *metrics.Histogram methods are nil-receiver no-ops).
	appendSeconds *metrics.Histogram
	fsyncSeconds  *metrics.Histogram

	stopSync chan struct{}
	syncDone chan struct{}
	stopOnce sync.Once
	lockFile *os.File // exclusive flock on the data dir (nil off-unix)
}

// Option customizes Open.
type Option func(*Store)

// WithFsync selects the fsync policy (default FsyncInterval).
func WithFsync(p FsyncPolicy) Option {
	return func(s *Store) { s.policy = p }
}

// WithFsyncInterval sets the background fsync cadence of FsyncInterval
// (default 100ms).
func WithFsyncInterval(d time.Duration) Option {
	return func(s *Store) {
		if d > 0 {
			s.interval = d
		}
	}
}

// WithSnapshotRetention keeps the n newest checkpoints of each run
// instead of only the latest (default 1). Cluster-node recovery uses a
// small history so a restarted node can roll back to whichever round
// boundary the survivors agree on, not just its own newest.
func WithSnapshotRetention(n int) Option {
	return func(s *Store) {
		if n > 0 {
			s.retain = n
		}
	}
}

// WithMetrics registers the store's persistence instrumentation on reg:
// WAL append and fsync latency histograms, plus counter views over the
// append/byte/checkpoint totals the store already tracks (read at scrape
// time — no extra hot-path accounting).
func WithMetrics(reg *metrics.Registry) Option {
	return func(s *Store) {
		if reg == nil {
			return
		}
		s.appendSeconds = reg.NewHistogram("reservoir_store_wal_append_seconds",
			"WAL append latency (write plus fsync under the always policy).",
			metrics.DefBuckets, nil)
		s.fsyncSeconds = reg.NewHistogram("reservoir_store_wal_fsync_seconds",
			"WAL fsync latency (per append under always, per flush under interval).",
			metrics.DefBuckets, nil)
		reg.CounterFunc("reservoir_store_wal_appends_total",
			"Round records appended to WAL segments.",
			nil, nil, func() float64 { return float64(s.walAppends.Load()) })
		reg.CounterFunc("reservoir_store_wal_bytes_total",
			"Bytes appended to WAL segments.",
			nil, nil, func() float64 { return float64(s.walBytesTotal.Load()) })
		reg.CounterFunc("reservoir_store_checkpoints_total",
			"Sampler checkpoints persisted (WAL rotations).",
			nil, nil, func() float64 { return float64(s.checkpoints.Load()) })
	}
}

// Open creates or reopens a store rooted at dir.
func Open(dir string, opts ...Option) (*Store, error) {
	s := &Store{
		dir:      dir,
		interval: 100 * time.Millisecond,
		retain:   1,
		logs:     make(map[string]*RunLog),
		stopSync: make(chan struct{}),
		syncDone: make(chan struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	if err := os.MkdirAll(s.runsDir(), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	lock, err := acquireDirLock(dir)
	if err != nil {
		return nil, err
	}
	s.lockFile = lock
	fail := func(err error) (*Store, error) {
		releaseDirLock(lock)
		return nil, err
	}
	mpath := filepath.Join(dir, "MANIFEST.json")
	if b, err := os.ReadFile(mpath); err == nil {
		if err := json.Unmarshal(b, &s.man); err != nil {
			return fail(fmt.Errorf("store: corrupt MANIFEST.json: %w", err))
		}
		if s.man.Version != manifestVersion {
			return fail(fmt.Errorf("store: manifest version %d, this build supports %d", s.man.Version, manifestVersion))
		}
	} else if os.IsNotExist(err) {
		s.man = manifest{Version: manifestVersion}
		if err := s.writeManifest(); err != nil {
			return fail(err)
		}
	} else {
		return fail(fmt.Errorf("store: %w", err))
	}
	if s.policy == FsyncInterval {
		go s.syncLoop()
	} else {
		close(s.syncDone)
	}
	return s, nil
}

func (s *Store) runsDir() string         { return filepath.Join(s.dir, "runs") }
func (s *Store) runDir(id string) string { return filepath.Join(s.runsDir(), id) }
func (s *Store) Dir() string             { return s.dir }
func (s *Store) Policy() FsyncPolicy     { return s.policy }

// writeManifest persists the manifest atomically. Caller holds s.mu (or is
// Open, before the store is shared).
func (s *Store) writeManifest() error {
	b, err := json.MarshalIndent(s.man, "", "  ")
	if err != nil {
		return err
	}
	if err := writeFileAtomic(s.dir, filepath.Join(s.dir, "MANIFEST.json"), append(b, '\n')); err != nil {
		return s.noteErr(fmt.Errorf("store: write manifest: %w", err))
	}
	return nil
}

// NextID returns the persisted run-ID counter.
func (s *Store) NextID() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man.NextID
}

// SetNextID durably advances the run-ID counter (it never moves backward).
func (s *Store) SetNextID(n int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= s.man.NextID {
		return nil
	}
	s.man.NextID = n
	return s.writeManifest()
}

// CreateRun initializes on-disk state for a new run: its directory, the
// config.json (written atomically), and an empty WAL segment starting at
// round 0. The returned RunLog is registered for interval fsyncs.
func (s *Store) CreateRun(id string, configJSON []byte) (*RunLog, error) {
	dir := s.runDir(id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, s.noteErr(fmt.Errorf("store: create run %s: %w", id, err))
	}
	if err := writeFileAtomic(dir, filepath.Join(dir, "config.json"), configJSON); err != nil {
		return nil, s.noteErr(fmt.Errorf("store: write run %s config: %w", id, err))
	}
	f, err := os.OpenFile(filepath.Join(dir, segName(0)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, s.noteErr(fmt.Errorf("store: create run %s wal: %w", id, err))
	}
	syncDir(dir)
	syncDir(s.runsDir())
	l := newRunLog(s, id, dir, f, 0, 0)
	s.register(l)
	return l, nil
}

// RunState is what recovery needs before replay: the run's config and the
// newest valid snapshot (nil if the run was never checkpointed). The WAL
// records past the snapshot are streamed separately with ReplayRecords so
// recovery memory stays bounded even for runs that never checkpoint.
type RunState struct {
	Config   []byte
	Snapshot *Snapshot
	// Warning notes recoverable damage (e.g. a torn tail that was
	// truncated); the run still recovers to the last consistent round.
	Warning error
}

// LoadRun reads a run's persisted state and reopens its WAL for appending.
// The active segment is the newest one on disk. A torn tail on the active
// segment (crash mid-append) is truncated away before the segment is
// reopened, so post-recovery appends land behind a valid record prefix
// instead of behind garbage that would shadow them on the next recovery.
//
// A checkpointed run (its oldest WAL segment starts past round 0) whose
// snapshots have all become unreadable is NOT loadable: pretending it is
// would silently reset acknowledged data to round 0 and corrupt the
// WAL's round numbering for every future recovery. LoadRun returns an
// error instead, and the caller leaves the files for inspection.
func (s *Store) LoadRun(id string) (*RunState, *RunLog, error) {
	dir := s.runDir(id)
	cfg, err := os.ReadFile(filepath.Join(dir, "config.json"))
	if err != nil {
		return nil, nil, fmt.Errorf("store: run %s: %w", id, err)
	}
	st := &RunState{Config: cfg}
	if dropped, terr := truncateActiveTail(dir); terr != nil {
		st.Warning = terr
	} else if dropped > 0 {
		st.Warning = fmt.Errorf("store: run %s: dropped %d torn/corrupt trailing WAL bytes", id, dropped)
	}
	var snapErr error
	st.Snapshot, snapErr = latestSnapshot(dir)
	if snapErr != nil && st.Warning == nil {
		st.Warning = snapErr
	}
	starts, err := segmentStarts(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("store: run %s: %w", id, err)
	}
	if st.Snapshot == nil && len(starts) > 0 && starts[0] > 0 {
		return nil, nil, fmt.Errorf(
			"store: run %s was checkpointed (WAL starts at round %d) but no snapshot decodes (%v); refusing to reset it to round 0",
			id, starts[0], snapErr)
	}

	// Reopen the newest segment for appending.
	segStart := uint64(0)
	if len(starts) > 0 {
		segStart = starts[len(starts)-1]
	}
	path := filepath.Join(dir, segName(segStart))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, s.noteErr(fmt.Errorf("store: reopen run %s wal: %w", id, err))
	}
	size := int64(0)
	if fi, err := f.Stat(); err == nil {
		size = fi.Size()
	}
	l := newRunLog(s, id, dir, f, segStart, size)
	s.register(l)
	return st, l, nil
}

// errStopReplay aborts a segment scan from inside the per-record callback.
var errStopReplay = fmt.Errorf("store: stop replay")

// ReplayRecords streams the run's WAL records with Round >= from to fn, in
// round order, one record in memory at a time, enforcing contiguity:
// records a snapshot already covers are skipped, and the stream stops at
// the first gap or corrupt frame (warn reports why; everything before it
// was delivered). An error returned by fn aborts the replay and is
// returned as err. Call after restoring the RunState snapshot, with from
// set to the restored round.
func (s *Store) ReplayRecords(id string, from uint64, fn func(*RoundRecord) error) (replayed int, warn, err error) {
	dir := s.runDir(id)
	starts, err := segmentStarts(dir)
	if err != nil {
		return 0, nil, fmt.Errorf("store: run %s: %w", id, err)
	}
	expect := from
	var fnErr error
	for _, start := range starts {
		_, serr := replaySegment(filepath.Join(dir, segName(start)), func(rec *RoundRecord) error {
			if rec.Round < expect {
				return nil // covered by the snapshot (or a stale overlap)
			}
			if rec.Round > expect {
				warn = fmt.Errorf("store: run %s: missing WAL record for round %d (next is %d)", id, expect, rec.Round)
				return errStopReplay
			}
			if err := fn(rec); err != nil {
				fnErr = err
				return errStopReplay
			}
			expect++
			replayed++
			return nil
		})
		if fnErr != nil {
			return replayed, warn, fnErr
		}
		if serr != nil && serr != errStopReplay && warn == nil {
			warn = fmt.Errorf("store: run %s: %s: %w", id, segName(start), serr)
		}
		if warn != nil {
			break // replay only the consistent prefix
		}
	}
	return replayed, warn, nil
}

// Snapshots lists the rounds of every decodable-looking snapshot file of
// a run, ascending (decode is only attempted by ReadSnapshot).
func (s *Store) Snapshots(id string) ([]uint64, error) {
	entries, err := os.ReadDir(s.runDir(id))
	if err != nil {
		return nil, fmt.Errorf("store: run %s: %w", id, err)
	}
	var rounds []uint64
	for _, e := range entries {
		if r, ok := parseSeq(e.Name(), "snap-", ".snap"); ok {
			rounds = append(rounds, r)
		}
	}
	sort.Slice(rounds, func(i, j int) bool { return rounds[i] < rounds[j] })
	return rounds, nil
}

// ReadSnapshot loads and verifies the snapshot taken at the given round.
func (s *Store) ReadSnapshot(id string, round uint64) (*Snapshot, error) {
	b, err := os.ReadFile(filepath.Join(s.runDir(id), snapName(round)))
	if err != nil {
		return nil, fmt.Errorf("store: run %s: %w", id, err)
	}
	snap, err := DecodeSnapshot(b)
	if err != nil {
		return nil, fmt.Errorf("store: run %s round %d: %w", id, round, err)
	}
	return snap, nil
}

// ListRuns returns the IDs of all persisted runs, sorted.
func (s *Store) ListRuns() ([]string, error) {
	entries, err := os.ReadDir(s.runsDir())
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// DeleteRun removes a run's on-disk state entirely. Any registered RunLog
// for the run must be closed first (the run's worker does this on exit).
func (s *Store) DeleteRun(id string) error {
	if err := os.RemoveAll(s.runDir(id)); err != nil {
		return s.noteErr(fmt.Errorf("store: delete run %s: %w", id, err))
	}
	syncDir(s.runsDir())
	return nil
}

func (s *Store) register(l *RunLog) {
	s.mu.Lock()
	s.logs[l.id] = l
	s.mu.Unlock()
}

func (s *Store) unregister(id string) {
	s.mu.Lock()
	delete(s.logs, id)
	s.mu.Unlock()
}

// noteErr records the most recent storage error for /healthz and returns it.
func (s *Store) noteErr(err error) error {
	msg := err.Error()
	s.lastErr.Store(&msg)
	return err
}

// Status summarizes the store for health reporting.
func (s *Store) Status() Status {
	s.mu.Lock()
	runs := len(s.logs)
	s.mu.Unlock()
	st := Status{
		Dir:         s.dir,
		Fsync:       s.policy.String(),
		Runs:        runs,
		WALAppends:  s.walAppends.Load(),
		WALBytes:    s.walBytesTotal.Load(),
		Checkpoints: s.checkpoints.Load(),
	}
	if p := s.lastErr.Load(); p != nil {
		st.LastError = *p
	}
	return st
}

// Abandon releases the store's directory lock without flushing or closing
// anything else, leaving files exactly as they are — the in-process
// equivalent of the process dying (a real kill -9 releases the flock
// automatically). Crash-recovery tests use it before reopening the
// directory; production code has no reason to call it.
func (s *Store) Abandon() {
	releaseDirLock(s.lockFile)
	s.lockFile = nil
}

// syncLoop is the FsyncInterval background syncer: every interval it
// fsyncs all logs with unsynced appends.
func (s *Store) syncLoop() {
	defer close(s.syncDone)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stopSync:
			return
		case <-t.C:
			s.mu.Lock()
			logs := make([]*RunLog, 0, len(s.logs))
			for _, l := range s.logs {
				logs = append(logs, l)
			}
			s.mu.Unlock()
			for _, l := range logs {
				if err := l.sync(); err != nil {
					s.noteErr(fmt.Errorf("store: interval sync run %s: %w", l.id, err))
				}
			}
		}
	}
}

// Close stops the background syncer and closes every registered log
// (flushing pending writes). The service closes run logs from their
// workers first; Close handles whatever remains.
func (s *Store) Close() error {
	s.stopOnce.Do(func() { close(s.stopSync) })
	<-s.syncDone
	s.mu.Lock()
	logs := make([]*RunLog, 0, len(s.logs))
	for _, l := range s.logs {
		logs = append(logs, l)
	}
	s.mu.Unlock()
	var first error
	for _, l := range logs {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	releaseDirLock(s.lockFile)
	return first
}
