package store

import (
	"bytes"
	"testing"
)

// FuzzDecodeRecords hammers the WAL segment scanner: arbitrary bytes —
// including truncated frames, bit flips, and length-lying headers — must
// never panic, never over-allocate, and never yield a record that does not
// re-encode to the exact frame bytes it was decoded from.
func FuzzDecodeRecords(f *testing.F) {
	var seg []byte
	seg = append(seg, EncodeRecord(mkRecord(0, 3, 4))...)
	seg = append(seg, EncodeRecord(&RoundRecord{Round: 1, Synthetic: []byte(`{"batch_len":50,"rounds":2}`)})...)
	seg = append(seg, EncodeRecord(mkRecord(2, 1, 0))...)
	f.Add(seg)
	f.Add(seg[:len(seg)-5])
	flipped := append([]byte(nil), seg...)
	flipped[len(flipped)/4] ^= 0x80
	f.Add(flipped)
	lying := append([]byte(nil), EncodeRecord(mkRecord(9, 1, 1))...)
	lying[6], lying[7], lying[8], lying[9] = 0xff, 0xff, 0xff, 0x7f
	f.Add(lying)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		recs, consumed, err := DecodeRecords(data)
		if consumed < 0 || consumed > len(data) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}
		if err != nil {
			return
		}
		// The accepted prefix must be exactly the concatenation of the
		// re-encoded records (decode inverts encode on its image).
		var re []byte
		for _, r := range recs {
			re = append(re, EncodeRecord(r)...)
		}
		if !bytes.Equal(re, data[:consumed]) {
			t.Fatalf("decoded records do not re-encode to the accepted prefix (%d vs %d bytes)", len(re), consumed)
		}
	})
}

// FuzzDecodeSnapshot hammers the snapshot file decoder with the same
// contract: error (never panic) on damaged input, exact round-trip on
// accepted input.
func FuzzDecodeSnapshot(f *testing.F) {
	blob := EncodeSnapshot(&Snapshot{Round: 12, Kind: 1, Blob: bytes.Repeat([]byte{0xAB, 1, 2, 3}, 40)})
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	flipped := append([]byte(nil), blob...)
	flipped[9] ^= 0x01
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		s, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeSnapshot(s), data) {
			t.Fatal("accepted snapshot does not re-encode bit-identically")
		}
	})
}
