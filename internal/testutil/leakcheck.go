// Package testutil holds helpers shared by the test suites. Its main
// export is a stdlib-only goroutine-leak guard: suites whose code spawns
// background goroutines (the tcpnet dial/accept/recv loops, the nodesvc
// service loops, the HTTP service) install VerifyTestMain so a test that
// forgets to shut something down fails the whole binary instead of
// leaking silently.
package testutil

import (
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// VerifyTestMain is a drop-in TestMain body:
//
//	func TestMain(m *testing.M) { testutil.VerifyTestMain(m) }
//
// It runs the suite and, when all tests passed, fails the binary if any
// non-allowlisted goroutine is still alive after a grace period (background
// loops legitimately take a moment to observe a Close).
func VerifyTestMain(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if err := CheckNoLeakedGoroutines(5 * time.Second); err != nil {
			fmt.Fprintf(os.Stderr, "goroutine leak check failed:\n%v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

// CheckNoLeakedGoroutines polls the runtime's goroutine dump until every
// goroutine not on the allowlist has exited, or the wait elapses — in which
// case it returns an error carrying the stacks of the stragglers.
func CheckNoLeakedGoroutines(wait time.Duration) error {
	deadline := time.Now().Add(wait)
	var leaked []string
	for {
		leaked = leakedGoroutines()
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	sort.Strings(leaked)
	return fmt.Errorf("%d leaked goroutine(s) after waiting %v:\n\n%s",
		len(leaked), wait, strings.Join(leaked, "\n\n"))
}

// allowedStackMarkers identify goroutines that are not leaks: the runtime's
// and testing package's own machinery, and stdlib daemons that live for the
// rest of the process by design.
var allowedStackMarkers = []string{
	"testing.(*M).Run",           // the suite driver itself
	"testing.Main(",              // legacy driver entry
	"testing.runTests(",          //
	"testing.(*T).Run(",          // parent goroutines of parallel subtests
	"runtime.goexit0",            //
	"runtime.gc",                 // background GC workers
	"runtime.bgsweep",            //
	"runtime.bgscavenge",         //
	"runtime.forcegchelper",      //
	"runtime.ReadTrace",          //
	"runtime/trace.Start",        //
	"os/signal.signal_recv",      // signal delivery daemon
	"os/signal.loop",             //
	"runtime.ensureSigM",         //
	"net/http.(*Server).Serve",   // httptest servers are closed by their
	"net/http.(*persistConn).",   // owners; lingering keep-alive conns on
	"net/http.setRequestCancel",  // the default transport are bounded and
	"net/http/httptest.",         // reclaimed by its idle timeout.
	"internal/poll.runtime_poll", //
	"testutil.leakedGoroutines",  // this checker's own goroutine
	"testutil.CheckNoLeaked",     //
}

// leakedGoroutines returns the stack of every live goroutine that matches
// none of the allowlist markers.
func leakedGoroutines() []string {
	// Ask cooperating stdlib components to retire their idle goroutines
	// before judging what is left.
	http.DefaultClient.CloseIdleConnections()

	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var leaked []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		g = strings.TrimSpace(g)
		if g == "" || !strings.HasPrefix(g, "goroutine ") {
			continue
		}
		allowed := false
		for _, marker := range allowedStackMarkers {
			if strings.Contains(g, marker) {
				allowed = true
				break
			}
		}
		if !allowed {
			leaked = append(leaked, g)
		}
	}
	return leaked
}
