package reservoir_test

import (
	"encoding/json"
	"testing"

	"reservoir"
)

// TestAlgorithmTextRoundTrip checks the JSON names used by reservoir-serve
// configs.
func TestAlgorithmTextRoundTrip(t *testing.T) {
	for _, a := range []reservoir.Algorithm{reservoir.Distributed, reservoir.CentralizedGather} {
		b, err := json.Marshal(a)
		if err != nil {
			t.Fatal(err)
		}
		var got reservoir.Algorithm
		if err := json.Unmarshal(b, &got); err != nil || got != a {
			t.Fatalf("round-trip of %v via %s: got %v, err %v", a, b, got, err)
		}
	}
	var a reservoir.Algorithm
	for text, want := range map[string]reservoir.Algorithm{
		`""`: reservoir.Distributed, `"ours"`: reservoir.Distributed,
		`"distributed"`: reservoir.Distributed,
		`"gather"`:      reservoir.CentralizedGather,
		`"centralized"`: reservoir.CentralizedGather,
	} {
		if err := json.Unmarshal([]byte(text), &a); err != nil || a != want {
			t.Errorf("unmarshal %s: got %v, err %v", text, a, err)
		}
	}
	if err := json.Unmarshal([]byte(`"bogus"`), &a); err == nil {
		t.Error("unmarshal of unknown algorithm succeeded")
	}
}

// TestSelStrategyTextRoundTrip does the same for selection strategies.
func TestSelStrategyTextRoundTrip(t *testing.T) {
	for _, s := range []reservoir.SelStrategy{
		reservoir.SelSinglePivot, reservoir.SelMultiPivot, reservoir.SelRandomDist,
	} {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var got reservoir.SelStrategy
		if err := json.Unmarshal(b, &got); err != nil || got != s {
			t.Fatalf("round-trip of %v via %s: got %v, err %v", s, b, got, err)
		}
	}
	var s reservoir.SelStrategy
	for text, want := range map[string]reservoir.SelStrategy{
		`""`: reservoir.SelSinglePivot, `"ours"`: reservoir.SelSinglePivot,
		`"single-pivot"`: reservoir.SelSinglePivot,
		`"multi-pivot"`:  reservoir.SelMultiPivot, `"ours-d"`: reservoir.SelMultiPivot,
		`"random-dist"`: reservoir.SelRandomDist,
	} {
		if err := json.Unmarshal([]byte(text), &s); err != nil || s != want {
			t.Errorf("unmarshal %s: got %v, err %v", text, s, err)
		}
	}
	if err := json.Unmarshal([]byte(`"bogus"`), &s); err == nil {
		t.Error("unmarshal of unknown strategy succeeded")
	}
}
