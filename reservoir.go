// Package reservoir is a communication-efficient (weighted) reservoir
// sampling library: a Go reproduction of Hübschle-Schneider & Sanders,
// "Communication-Efficient (Weighted) Reservoir Sampling" (SPAA 2020,
// arXiv:1910.11069).
//
// It maintains a uniform or weighted random sample without replacement of
// size k over the union of data streams that arrive as mini-batches at p
// distributed sites (PEs). No site acts as a coordinator: every PE keeps
// the part of the sample drawn from its own stream in a B+ tree keyed by
// random variates, and after each mini-batch the PEs jointly select the
// globally k-th smallest key — the insertion threshold for the next batch —
// with a communication-efficient distributed selection algorithm.
//
// The collective algorithms run over a pluggable transport. By default
// the distributed machine is simulated: PEs are goroutines, messages pass
// through an in-process network that charges the α+βℓ cost model of the
// paper on deterministic virtual clocks. The same algorithms also run
// across real OS processes over TCP (reservoir-serve's node mode, the
// Node type), producing byte-identical samples for the same seed and
// stream (see DESIGN.md §2).
//
// Entry points:
//
//   - Cluster: the distributed sampler (or the centralized gathering
//     baseline) over p simulated PEs; see NewCluster.
//   - Node: one PE of a real multi-process cluster over a network
//     transport; see NewNode and docs/DEPLOY.md.
//   - SequentialWeighted / SequentialUniform: single-stream reservoir
//     samplers with the paper's skip-value optimizations; see NewWeighted
//     and NewUniform.
//   - WindowedWeighted: sliding-window sampling (the paper's future-work
//     extension); see NewWindowed.
//
// A minimal example:
//
//	cfg := reservoir.Config{K: 100, Weighted: true, Seed: 1}
//	cl, _ := reservoir.NewCluster(8, cfg)
//	src := reservoir.UniformSource{Seed: 2, BatchLen: 10000, Lo: 0, Hi: 100}
//	for round := 0; round < 50; round++ {
//		cl.ProcessRound(src)
//	}
//	sample := cl.Sample() // 100 items, weighted without replacement
package reservoir

import (
	"reservoir/internal/core"
	"reservoir/internal/costmodel"
	"reservoir/internal/rng"
	"reservoir/internal/workload"
)

// Item is one weighted stream element; the weight must be strictly
// positive for weighted sampling and is ignored for uniform sampling.
type Item = workload.Item

// Batch is one mini-batch of items at one PE.
type Batch = workload.Batch

// SliceBatch is a materialized batch.
type SliceBatch = workload.SliceBatch

// SynthBatch is a batch whose items are generated on demand (O(1) memory).
type SynthBatch = workload.SynthBatch

// Source produces per-PE, per-round mini-batches.
type Source = workload.Source

// UniformSource generates batches with weights uniform in (Lo, Hi] — the
// paper's primary experimental workload.
type UniformSource = workload.UniformSource

// SkewedSource generates normally distributed weights whose mean grows
// with the round number and PE rank — the paper's robustness workload.
type SkewedSource = workload.SkewedSource

// ParetoSource generates heavy-tailed weights.
type ParetoSource = workload.ParetoSource

// Config configures a sampler; the zero value is invalid (set K at least).
type Config = core.Config

// Timing is a per-phase virtual-time breakdown (scan/insert, select,
// threshold, gather), matching the paper's Figure 6 categories.
type Timing = core.Timing

// Counters aggregates operation counts (items, insertions, selection
// rounds, candidate traffic).
type Counters = core.Counters

// SelStrategy picks the distributed selection algorithm.
type SelStrategy = core.SelStrategy

// Selection strategies (paper Sec 3.3).
const (
	// SelSinglePivot is the universally applicable single-pivot algorithm
	// ("ours").
	SelSinglePivot = core.SelSinglePivot
	// SelMultiPivot uses Config.Pivots pivots per round ("ours-8" with
	// Pivots = 8).
	SelMultiPivot = core.SelMultiPivot
	// SelRandomDist exploits randomly distributed inputs.
	SelRandomDist = core.SelRandomDist
)

// CostModel holds the virtual-time charges of the simulated machine.
type CostModel = costmodel.Model

// DefaultCostModel returns the default cost model (see package costmodel).
func DefaultCostModel() CostModel { return costmodel.Default() }

// SequentialWeighted is a single-stream weighted reservoir sampler using
// exponential jumps (paper Sec 4.1).
type SequentialWeighted = core.SeqWeighted

// SequentialUniform is a single-stream uniform reservoir sampler using
// geometric jumps (paper Sec 4.3).
type SequentialUniform = core.SeqUniform

// WindowedWeighted samples from a sliding window of the most recent items
// (the paper's future-work extension, chunk-granular).
type WindowedWeighted = core.WindowedWeighted

// NewWeighted returns a sequential weighted sampler with sample size k.
func NewWeighted(k int, seed uint64) *SequentialWeighted {
	return core.NewSeqWeighted(k, rng.NewXoshiro256(seed))
}

// NewUniform returns a sequential uniform sampler with sample size k.
func NewUniform(k int, seed uint64) *SequentialUniform {
	return core.NewSeqUniform(k, rng.NewXoshiro256(seed))
}

// NewWindowed returns a sliding-window weighted sampler with sample size k
// over a window of `window` items, tracked in chunks of chunkLen (window
// must be a multiple of chunkLen).
func NewWindowed(k, window, chunkLen int, seed uint64) *WindowedWeighted {
	return core.NewWindowedWeighted(k, window, chunkLen, rng.NewXoshiro256(seed))
}
