package reservoir

import (
	"sort"
	"testing"
)

func sampleIDs(items []Item) []uint64 {
	ids := make([]uint64, len(items))
	for i, it := range items {
		ids[i] = it.ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func TestClusterSnapshotResumesIdentically(t *testing.T) {
	cfg := Config{K: 80, Weighted: true, Strategy: SelMultiPivot, Pivots: 4, Seed: 21}
	cl, err := NewCluster(6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := UniformSource{Seed: 5, BatchLen: 700, Lo: 0, Hi: 100}
	for round := 0; round < 3; round++ {
		cl.ProcessRound(src)
	}
	blob, err := cl.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	restored, err := RestoreCluster(cfg, blob)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Round() != cl.Round() || restored.P() != cl.P() {
		t.Fatalf("restored round/p = %d/%d, want %d/%d",
			restored.Round(), restored.P(), cl.Round(), cl.P())
	}
	th1, _ := cl.Threshold()
	th2, _ := restored.Threshold()
	if th1 != th2 {
		t.Fatalf("thresholds differ: %v vs %v", th1, th2)
	}

	// Continuing both clusters with the same input must give identical
	// samples (the PRNG state is part of the snapshot).
	for round := 3; round < 6; round++ {
		cl.ProcessRound(src)
		restored.ProcessRound(src)
	}
	a := sampleIDs(cl.Sample())
	b := sampleIDs(restored.Sample())
	if len(a) != len(b) {
		t.Fatalf("sample sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("samples diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSnapshotRoundTripsCounters(t *testing.T) {
	// Format v2 carries per-PE operation counters, so a recovered run's
	// stats (items processed, insertions, selection depths) match an
	// uninterrupted run's.
	cfg := Config{K: 50, Weighted: true, Seed: 11}
	cl, err := NewCluster(4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := UniformSource{Seed: 3, BatchLen: 400, Lo: 0, Hi: 100}
	for round := 0; round < 4; round++ {
		cl.ProcessRound(src)
	}
	blob, err := cl.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreCluster(cfg, blob)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := restored.Counters(), cl.Counters(); got != want {
		t.Fatalf("counters differ after restore: %+v vs %+v", got, want)
	}
	for pe := 0; pe < cl.P(); pe++ {
		if got, want := restored.PECounters(pe), cl.PECounters(pe); got != want {
			t.Fatalf("PE %d counters differ: %+v vs %+v", pe, got, want)
		}
	}
	// And the counters keep accumulating identically afterwards.
	cl.ProcessRound(src)
	restored.ProcessRound(src)
	if got, want := restored.Counters(), cl.Counters(); got != want {
		t.Fatalf("counters diverge after resume: %+v vs %+v", got, want)
	}
}

func TestSnapshotBeforeThreshold(t *testing.T) {
	// Snapshot during the fill phase (no threshold yet).
	cfg := Config{K: 1000, Weighted: true, Seed: 9}
	cl, err := NewCluster(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := UniformSource{Seed: 2, BatchLen: 50, Lo: 0, Hi: 10}
	cl.ProcessRound(src)
	blob, err := cl.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreCluster(cfg, blob)
	if err != nil {
		t.Fatal(err)
	}
	if restored.SampleSize() != cl.SampleSize() {
		t.Fatalf("sizes differ: %d vs %d", restored.SampleSize(), cl.SampleSize())
	}
	if _, have := restored.Threshold(); have {
		t.Fatal("restored cluster has a threshold it should not have")
	}
}

func TestSnapshotErrors(t *testing.T) {
	cfg := Config{K: 10, Weighted: true, Seed: 1}
	gcl, err := NewCluster(2, cfg, WithAlgorithm(CentralizedGather))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gcl.Snapshot(); err == nil {
		t.Error("gather cluster snapshot should fail")
	}
	if _, err := RestoreCluster(cfg, nil); err == nil {
		t.Error("empty snapshot accepted")
	}
	cl, err := NewCluster(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl.ProcessRound(UniformSource{Seed: 3, BatchLen: 100, Lo: 0, Hi: 1})
	blob, err := cl.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreCluster(cfg, blob[:len(blob)-4]); err == nil {
		t.Error("truncated snapshot accepted")
	}
	if _, err := RestoreCluster(cfg, append(blob, 0)); err == nil {
		t.Error("snapshot with trailing bytes accepted")
	}
	if _, err := RestoreCluster(cfg, blob, WithAlgorithm(CentralizedGather)); err == nil {
		t.Error("restore into gather cluster accepted")
	}
}
