package reservoir

import (
	"fmt"

	"reservoir/internal/coll"
	"reservoir/internal/core"
	"reservoir/internal/simnet"
	"reservoir/internal/transport"
	"reservoir/internal/workload"
)

// Algorithm selects which distributed sampler a Cluster runs.
type Algorithm int

const (
	// Distributed is the paper's fully distributed algorithm (Sec 4.2):
	// no coordinator, threshold found by distributed selection.
	Distributed Algorithm = iota
	// CentralizedGather is the comparison baseline (Sec 4.5): candidates
	// are gathered at a root PE which selects sequentially.
	CentralizedGather
)

// String names the algorithm as in the paper's plots.
func (a Algorithm) String() string {
	switch a {
	case Distributed:
		return "ours"
	case CentralizedGather:
		return "gather"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// MarshalText implements encoding.TextMarshaler using the paper's names,
// so Algorithm round-trips through JSON configs (e.g. reservoir-serve).
func (a Algorithm) MarshalText() ([]byte, error) {
	switch a {
	case Distributed, CentralizedGather:
		return []byte(a.String()), nil
	default:
		return nil, fmt.Errorf("reservoir: unknown algorithm %d", int(a))
	}
}

// UnmarshalText implements encoding.TextUnmarshaler. It accepts the
// paper's plot names ("ours", "gather") and descriptive aliases; the empty
// string selects Distributed.
func (a *Algorithm) UnmarshalText(text []byte) error {
	switch string(text) {
	case "", "ours", "distributed":
		*a = Distributed
	case "gather", "centralized":
		*a = CentralizedGather
	default:
		return fmt.Errorf("reservoir: unknown algorithm %q (want \"ours\" or \"gather\")", text)
	}
	return nil
}

// NetworkStats reports a cluster's network traffic, populated from
// whichever transport backend the sampler runs on. On the in-process
// simulator Words is the α+βℓ cost-model word count and Bytes is Words*8;
// on a real network (see reservoir-serve's node mode) Words is the same
// cost-model count declared by the senders and Bytes is the actual encoded
// payload volume on the wire.
type NetworkStats struct {
	// Messages is the number of point-to-point messages sent.
	Messages int64
	// Words is the cost-model size of all messages in 8-byte machine words.
	Words int64
	// Bytes is the payload volume in bytes (Words*8 when simulated).
	Bytes int64
}

// statsFromTransport converts transport-level counters to the public type.
func statsFromTransport(s transport.Stats) NetworkStats {
	return NetworkStats{Messages: s.Messages, Words: s.Words, Bytes: s.Bytes}
}

// The simulator's PE is a transport.Conn: the collectives (and therefore
// the samplers) run on the interface, and the simulated backend needs no
// adapter.
var _ transport.Conn = (*simnet.PE)(nil)

// Cluster runs a distributed reservoir sampler over p simulated PEs.
// All per-round methods drive every PE concurrently (one goroutine each)
// and return when the round's collective operations have completed.
type Cluster struct {
	sim      *simnet.Cluster
	samplers []core.Sampler
	p        int
	round    int
	algo     Algorithm
}

// NewCluster creates a cluster of p PEs running the configured sampler.
func NewCluster(p int, cfg Config, opts ...Option) (*Cluster, error) {
	o := options{algo: Distributed, cost: simnet.CostParams{}}
	for _, opt := range opts {
		opt(&o)
	}
	validated := cfg
	if validated.Model == (CostModel{}) {
		validated.Model = DefaultCostModel()
	}
	if o.cost == (simnet.CostParams{}) {
		o.cost = simnet.CostParams{AlphaNS: validated.Model.AlphaNS, BetaNS: validated.Model.BetaNS}
	}
	sim := simnet.NewCluster(p, o.cost)
	c := &Cluster{sim: sim, samplers: make([]core.Sampler, p), p: p, algo: o.algo}
	for i := 0; i < p; i++ {
		comm := coll.New(sim.PE(i))
		var err error
		switch o.algo {
		case CentralizedGather:
			c.samplers[i], err = core.NewGatherPE(comm, validated)
		default:
			c.samplers[i], err = core.NewDistPE(comm, validated)
		}
		if err != nil {
			return nil, err
		}
	}
	return c, nil
}

// options collects Option settings.
type options struct {
	algo Algorithm
	cost simnet.CostParams
}

// Option customizes NewCluster.
type Option func(*options)

// WithAlgorithm selects the sampler implementation (default Distributed).
func WithAlgorithm(a Algorithm) Option {
	return func(o *options) { o.algo = a }
}

// WithNetworkCost overrides the simulated network parameters α (per
// message) and β (per 8-byte word), both in nanoseconds.
func WithNetworkCost(alphaNS, betaNS float64) Option {
	return func(o *options) { o.cost = simnet.CostParams{AlphaNS: alphaNS, BetaNS: betaNS} }
}

// P returns the number of PEs.
func (c *Cluster) P() int { return c.p }

// Algorithm returns the sampler implementation the cluster runs.
func (c *Cluster) Algorithm() Algorithm { return c.algo }

// Round returns the number of mini-batch rounds processed so far.
func (c *Cluster) Round() int { return c.round }

// ProcessRound feeds every PE its next mini-batch from src and runs the
// collective threshold update.
func (c *Cluster) ProcessRound(src Source) {
	round := c.round
	c.sim.Parallel(func(pe *simnet.PE) {
		c.samplers[pe.ID()].ProcessBatch(src.NextBatch(pe.ID(), round))
	})
	c.round++
}

// ProcessBatches feeds explicit per-PE batches (len(batches) must equal P).
func (c *Cluster) ProcessBatches(batches []SliceBatch) error {
	if len(batches) != c.p {
		return fmt.Errorf("reservoir: got %d batches for %d PEs", len(batches), c.p)
	}
	c.sim.Parallel(func(pe *simnet.PE) {
		c.samplers[pe.ID()].ProcessBatch(batches[pe.ID()])
	})
	c.round++
	return nil
}

// Sample gathers and returns the current global sample.
func (c *Cluster) Sample() []Item {
	var out []Item
	c.sim.Parallel(func(pe *simnet.PE) {
		s := c.samplers[pe.ID()].CollectSample()
		if pe.ID() == 0 {
			out = s
		}
	})
	return out
}

// SampleSnapshot returns the current global sample without running the
// collective gather: it concatenates every PE's local reservoir directly,
// so it charges no virtual time and leaves the simulated traffic counters
// untouched. The result has the same contents as Sample (the PE-order
// concatenation of the local samples). It must not be called concurrently
// with ProcessRound, ProcessBatches, or Sample — callers that observe a
// live cluster (e.g. the serving layer's per-run ingest worker) must
// serialize it with the rounds themselves.
func (c *Cluster) SampleSnapshot() []Item {
	c.drainPending()
	n := 0
	locals := make([][]Item, c.p)
	for i, s := range c.samplers {
		locals[i] = s.LocalSample()
		n += len(locals[i])
	}
	out := make([]Item, 0, n)
	for _, l := range locals {
		out = append(out, l...)
	}
	return out
}

// drainPending completes a pipelined round still awaiting its deferred
// selection collectives (Config.Pipeline), so observers only ever see
// committed round boundaries. Draining early is stream-neutral (DESIGN.md
// §2.6); it does run the selection's collectives, so it charges virtual
// time and traffic like the round itself would have. All PEs defer in
// lockstep, so checking PE 0 decides for the cluster.
func (c *Cluster) drainPending() {
	pe0, ok := c.samplers[0].(*core.DistPE)
	if !ok || !pe0.Pending() {
		return
	}
	c.sim.Parallel(func(pe *simnet.PE) {
		c.samplers[pe.ID()].(*core.DistPE).FinishPending()
	})
}

// SampleSize returns the current global sample size.
func (c *Cluster) SampleSize() int { return c.samplers[0].SampleSize() }

// Threshold returns the current global key threshold and whether one has
// been established.
func (c *Cluster) Threshold() (float64, bool) { return c.samplers[0].Threshold() }

// VirtualTime returns the largest PE virtual clock in nanoseconds — the
// simulated elapsed time of all processing so far.
func (c *Cluster) VirtualTime() float64 { return c.sim.MaxClock() }

// ResetClocks zeroes all virtual clocks (e.g. between measurement phases).
func (c *Cluster) ResetClocks() { c.sim.ResetClocks() }

// NetworkStats returns cluster-wide message and word counters.
func (c *Cluster) NetworkStats() NetworkStats {
	s := c.sim.Stats()
	return NetworkStats{Messages: s.Messages, Words: s.Words, Bytes: s.Words * 8}
}

// Timing returns the per-phase maximum over all PEs of the accumulated
// virtual phase times (the cluster-level composition of Figure 6).
func (c *Cluster) Timing() Timing {
	var t Timing
	for _, s := range c.samplers {
		t = t.Max(s.Timing())
	}
	return t
}

// Counters returns the sum of all PEs' operation counters.
func (c *Cluster) Counters() Counters {
	var total Counters
	for _, s := range c.samplers {
		total.Add(s.Counters())
	}
	return total
}

// PECounters returns one PE's counters (for per-PE load analyses).
func (c *Cluster) PECounters(pe int) Counters { return c.samplers[pe].Counters() }

// PETiming returns one PE's accumulated per-phase virtual times.
func (c *Cluster) PETiming(pe int) Timing { return c.samplers[pe].Timing() }

// Cluster snapshot envelope framing (format v2: adds a magic/version
// header and per-PE operation counters to the v1 headerless layout, so
// recovered runs report the same lifetime counters as an uninterrupted
// run).
const (
	clusterSnapMagic   = uint32(0x4C435352) // "RSCL"
	clusterSnapVersion = byte(2)
	// maxSnapshotPEs bounds the PE count of a snapshottable cluster:
	// Snapshot refuses larger clusters and RestoreCluster treats larger
	// declared counts as corruption before any allocation happens, so the
	// encoder and decoder limits always agree.
	maxSnapshotPEs = 4096
	// countersPerPE is the number of uint64 counter fields serialized per PE.
	countersPerPE = 6
)

// Snapshot serializes the whole cluster's sampler state (per-PE
// reservoirs, threshold, PRNG states, operation counters) so a sampling
// process can be persisted and resumed bit-identically with
// RestoreCluster. Only the Distributed algorithm supports snapshots, and
// only up to maxSnapshotPEs PEs.
// Virtual-time measurements are not part of the state and restart from
// zero after a restore; operation counters round-trip.
func (c *Cluster) Snapshot() ([]byte, error) {
	if c.algo != Distributed {
		return nil, fmt.Errorf("reservoir: snapshots require the Distributed algorithm")
	}
	if c.p > maxSnapshotPEs {
		return nil, fmt.Errorf("reservoir: snapshots support at most %d PEs, cluster has %d", maxSnapshotPEs, c.p)
	}
	// Snapshots are round boundaries: complete a pipelined round first.
	c.drainPending()
	var buf []byte
	var head [8]byte
	putU64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			head[i] = byte(v >> (8 * i))
		}
		buf = append(buf, head[:]...)
	}
	buf = append(buf,
		byte(clusterSnapMagic&0xff), byte(clusterSnapMagic>>8&0xff),
		byte(clusterSnapMagic>>16&0xff), byte(clusterSnapMagic>>24&0xff),
		clusterSnapVersion)
	putU64(uint64(c.p))
	putU64(uint64(c.round))
	for i := 0; i < c.p; i++ {
		cnt := c.samplers[i].Counters()
		putU64(uint64(cnt.ItemsProcessed))
		putU64(uint64(cnt.Inserted))
		putU64(uint64(cnt.CandidateWords))
		putU64(uint64(cnt.Selections))
		putU64(uint64(cnt.SelectionRounds))
		putU64(uint64(cnt.GatheredSelections))
		blob, err := c.samplers[i].(*core.DistPE).MarshalBinary()
		if err != nil {
			return nil, err
		}
		putU64(uint64(len(blob)))
		buf = append(buf, blob...)
	}
	return buf, nil
}

// RestoreCluster reconstructs a cluster from a Snapshot. cfg and opts must
// match the snapshotting cluster's configuration. Corrupt, truncated, or
// length-lying input is rejected with an error before any sizable
// allocation is made.
func RestoreCluster(cfg Config, snapshot []byte, opts ...Option) (*Cluster, error) {
	getU64 := func() (uint64, error) {
		if len(snapshot) < 8 {
			return 0, fmt.Errorf("reservoir: truncated snapshot")
		}
		var v uint64
		for i := 0; i < 8; i++ {
			v |= uint64(snapshot[i]) << (8 * i)
		}
		snapshot = snapshot[8:]
		return v, nil
	}
	if len(snapshot) < 5 {
		return nil, fmt.Errorf("reservoir: truncated snapshot")
	}
	magic := uint32(snapshot[0]) | uint32(snapshot[1])<<8 | uint32(snapshot[2])<<16 | uint32(snapshot[3])<<24
	if magic != clusterSnapMagic {
		return nil, fmt.Errorf("reservoir: not a cluster snapshot")
	}
	if v := snapshot[4]; v != clusterSnapVersion {
		return nil, fmt.Errorf("reservoir: unsupported cluster snapshot version %d", v)
	}
	snapshot = snapshot[5:]
	p64, err := getU64()
	if err != nil {
		return nil, err
	}
	round, err := getU64()
	if err != nil {
		return nil, err
	}
	if p64 == 0 || p64 > maxSnapshotPEs {
		return nil, fmt.Errorf("reservoir: corrupt snapshot (p = %d)", p64)
	}
	// Every PE needs at least its counters and blob-length prefix; check
	// before building a p-sized cluster so a length-lying header cannot
	// force a huge allocation.
	if uint64(len(snapshot)) < p64*(countersPerPE+1)*8 {
		return nil, fmt.Errorf("reservoir: truncated snapshot (%d bytes for %d PEs)", len(snapshot), p64)
	}
	c, err := NewCluster(int(p64), cfg, opts...)
	if err != nil {
		return nil, err
	}
	if c.algo != Distributed {
		return nil, fmt.Errorf("reservoir: snapshots require the Distributed algorithm")
	}
	c.round = int(round)
	for i := 0; i < c.p; i++ {
		var raw [countersPerPE]uint64
		for j := range raw {
			if raw[j], err = getU64(); err != nil {
				return nil, fmt.Errorf("reservoir: PE %d counters: %w", i, err)
			}
		}
		n, err := getU64()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(snapshot)) {
			return nil, fmt.Errorf("reservoir: truncated snapshot at PE %d", i)
		}
		pe := c.samplers[i].(*core.DistPE)
		if err := pe.UnmarshalBinary(snapshot[:n]); err != nil {
			return nil, fmt.Errorf("reservoir: PE %d: %w", i, err)
		}
		pe.RestoreCounters(core.Counters{
			ItemsProcessed:     int64(raw[0]),
			Inserted:           int64(raw[1]),
			CandidateWords:     int64(raw[2]),
			Selections:         int64(raw[3]),
			SelectionRounds:    int64(raw[4]),
			GatheredSelections: int64(raw[5]),
		})
		snapshot = snapshot[n:]
	}
	if len(snapshot) != 0 {
		return nil, fmt.Errorf("reservoir: %d trailing bytes in snapshot", len(snapshot))
	}
	return c, nil
}

// Ensure workload.Source implementations satisfy the aliased interface.
var _ Source = workload.UniformSource{}
